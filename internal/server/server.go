// Package server exposes a private histogram interface over HTTP — the
// deployment the paper sketches in Appendix B ("the server can implement
// the post-processing step. In that case it would appear to the analyst
// as if the server was sampling from the improved distribution"), in the
// spirit of the emerging private query interfaces it cites (PINQ).
//
// The data owner holds one sensitive count vector and a total epsilon
// budget. Analysts POST release requests; the server runs the mechanism
// plus constrained inference, charges the budget under sequential
// composition, and returns the serialized release. Once the budget is
// exhausted every further request is refused — permanently.
//
// Every strategy the library implements is served through one generic
// handler: a registry maps each dphist.Strategy to the function that
// assembles its dphist.Request from server state, and the uniform
// dphist.Release interface carries the result back to the wire. Adding a
// strategy to the library means adding one registry entry here.
//
// Beyond one-shot minting, the server retains releases in a
// dphist.Store and answers batched range queries against them, so the
// budget-free read side scales with query traffic instead of privacy
// spend: POST /v1/releases mints-and-stores under a name, GET
// /v1/releases lists what is retained, and POST /v1/query answers many
// [lo, hi) ranges against one stored release in a single round trip.
//
// The server is multi-tenant: every route has a namespace-scoped twin
// under /v1/ns/{ns}/... operating on that namespace's release keyspace
// and its own epsilon budget (dphist.Store.Namespace). The unscoped
// routes are the "default" namespace. Namespaces spring into being on
// first write, each with a fresh budget over the same protected counts,
// so the deployment-wide privacy loss is the sum across namespaces —
// run the server behind an authenticating front that controls who may
// allocate tenants. Reads never create namespace state. Handing New a store opened with
// dphist.OpenStore makes the whole thing durable — releases and budget
// ledgers survive restarts. /healthz answers load-balancer probes and
// /v1/stats reports per-namespace store sizes, budgets, and request
// counters for ops dashboards.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/ingest"
)

// Config describes the protected dataset and policy.
type Config struct {
	// Counts is the sensitive unit-count histogram being protected. The
	// degree-sequence strategy reads it as a degree vector; the hierarchy
	// strategy reads it as leaf-query counts.
	Counts []float64
	// Cells is the sensitive 2-D grid being protected, Cells[y][x]
	// (short rows are zero-padded). When set, the universal2d strategy
	// becomes servable: POST /v1/releases can mint 2-D releases and
	// POST /v1/query2d answers rectangle batches against them. When
	// nil, universal2d requests are refused.
	Cells [][]float64
	// Budget is the total epsilon available to each namespace. When
	// Store is set the store's own WithBudget total governs instead;
	// when Accountant is set it governs the default namespace.
	Budget float64
	// Accountant, when non-nil, charges default-namespace releases
	// against an externally owned budget — embed the server in a wider
	// deployment whose other components share the same composition
	// bound, or inspect charges in tests. Namespaced routes always use
	// the store's per-namespace accountants.
	Accountant *dphist.Accountant
	// Seed drives the noise streams.
	Seed uint64
	// Branching is the universal-histogram tree fan-out; 0 means 2.
	Branching int
	// MaxEpsilonPerRequest caps single requests; 0 means no cap beyond
	// the remaining budget.
	MaxEpsilonPerRequest float64
	// Hierarchy enables the hierarchy strategy: the constraint forest
	// whose leaf counts are Counts (so it must have exactly len(Counts)
	// leaves). When nil, hierarchy requests are refused.
	Hierarchy *dphist.Hierarchy
	// Store, when non-nil, is the externally owned release store the
	// server serves from — open one with dphist.OpenStore for
	// durability. The caller keeps ownership and closes it after
	// shutdown. When nil the server builds an in-memory store from
	// StoreCapacity/StoreTTL/Budget.
	Store *dphist.Store
	// StoreCapacity bounds how many named releases the server retains
	// for /v1/query; past it the least recently queried release is
	// evicted. 0 means unbounded. Ignored when Store is set.
	StoreCapacity int
	// StoreTTL expires stored releases this long after minting. 0 means
	// they never expire. Ignored when Store is set.
	StoreTTL time.Duration
	// CacheCapacity enables the store's answer cache with this many
	// cached batches per query family (dphist.WithQueryCache): repeated
	// /v1/query and /v1/query2d batches against an unchanged release
	// answer from memory, with hit counters in /v1/stats. 0 disables
	// caching. Ignored when Store is set — configure the cache on the
	// store you pass in.
	CacheCapacity int
	// Ingester, when non-nil, enables the streaming write path: POST
	// /v1/ingest absorbs event batches, POST /v1/ingest/live answers the
	// continual-count surface, and /v1/stats grows an ingest block. It
	// must be built over the same Store the server serves from (epoch
	// releases mint straight into /v1/query's keyspace) and the caller
	// keeps ownership: Start it before serving, Close it before closing
	// the store.
	Ingester *ingest.Ingester
	// Follower marks this server a read replica: minting routes are
	// refused with 403 and /v1/stats reports the follower role plus
	// replication lag. Store must be set (a replica store from
	// dphist.NewReplica or dphist.OpenReplica, fed by a tailer the
	// caller owns) and Counts may be empty — a follower serves only what
	// replication ships.
	Follower bool
	// ReplStats, when non-nil, injects the replication tailer's counters
	// into /v1/stats. Set by dphist-server -follow; nil on primaries.
	ReplStats func() ReplicationStatus
	// ReplPollWindow bounds how long GET /v1/repl/stream parks a
	// caught-up long-poll before returning an empty chunk so the
	// follower re-polls; 0 means 20s. Keep it under any front-end write
	// timeout or the poll is killed mid-park.
	ReplPollWindow time.Duration
}

// ReplicationStatus is a follower's view of its replication tailer,
// injected through Config.ReplStats by the process that owns the tailer
// so /v1/stats can report lag without this package importing it.
type ReplicationStatus struct {
	State          string
	PrimarySeq     uint64
	RecordsApplied int64
	Snapshots      int64
	Errors         int64
	LastError      string
}

// Server is the HTTP-facing privacy mechanism. Safe for concurrent use.
type Server struct {
	cfg   Config
	mech  *dphist.Mechanism
	store *dphist.Store
	start time.Time

	sessMu   sync.Mutex
	sessions map[string]*dphist.Session // one budgeted session per namespace

	// Ops counters served by /v1/stats.
	reqTotal   atomic.Int64
	reqErrors  atomic.Int64
	mintCount  atomic.Int64
	queryCount atomic.Int64
	// encodeErrors counts response bodies that failed to encode — every
	// one was a silent half-success before writeJSON buffered its output.
	encodeErrors atomic.Int64
	// autoResolved counts successful "strategy": "auto" mints by the
	// concrete strategy the advisor chose, indexed by dphist.Strategy.
	autoResolved []atomic.Int64

	// nsViews caches namespace handles for the query hot path; see
	// nsView in wire.go. Only namespaces that exist are ever cached.
	nsViews sync.Map
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Counts) == 0 && !cfg.Follower {
		return nil, errors.New("server: empty count vector")
	}
	if cfg.Follower && cfg.Store == nil {
		return nil, errors.New("server: follower requires a replica Store")
	}
	if cfg.Accountant == nil && cfg.Store == nil && !(cfg.Budget > 0) {
		return nil, fmt.Errorf("server: budget %v must be positive", cfg.Budget)
	}
	if cfg.Hierarchy != nil && len(cfg.Hierarchy.Leaves()) != len(cfg.Counts) {
		return nil, fmt.Errorf("server: hierarchy has %d leaves for %d counts",
			len(cfg.Hierarchy.Leaves()), len(cfg.Counts))
	}
	k := cfg.Branching
	if k == 0 {
		k = 2
	}
	m, err := dphist.New(dphist.WithSeed(cfg.Seed), dphist.WithBranching(k))
	if err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		opts := []dphist.StoreOption{
			dphist.WithCapacity(cfg.StoreCapacity),
			dphist.WithTTL(cfg.StoreTTL),
			dphist.WithQueryCache(cfg.CacheCapacity),
		}
		if cfg.Budget > 0 {
			opts = append(opts, dphist.WithBudget(cfg.Budget))
		}
		store = dphist.NewStore(opts...)
	}
	return &Server{
		cfg:          cfg,
		mech:         m,
		store:        store,
		start:        time.Now(),
		sessions:     make(map[string]*dphist.Session),
		autoResolved: make([]atomic.Int64, len(dphist.Strategies())),
	}, nil
}

// noteAutoDecision records an auto-resolution against the concrete
// strategy the advisor chose and returns the decision for the response
// payload; direct (non-auto) mints return nil and count nothing.
func (s *Server) noteAutoDecision(release dphist.Release) *dphist.AutoDecision {
	dec, ok := dphist.ReleaseDecision(release)
	if !ok {
		return nil
	}
	if st, err := dphist.ParseStrategy(dec.Strategy); err == nil && st.Valid() {
		if i := int(st); i >= 0 && i < len(s.autoResolved) {
			s.autoResolved[i].Add(1)
		}
	}
	return &dec
}

// session returns (creating on first use) the namespace's budgeted
// session. Every namespace charges its own store accountant — durable
// when the store is — except the default namespace under a legacy
// Config.Accountant override.
func (s *Server) session(ns string) (*dphist.Session, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess, ok := s.sessions[ns]; ok {
		return sess, nil
	}
	acct := s.cfg.Accountant
	if acct == nil || ns != dphist.DefaultNamespace {
		acct = s.store.Namespace(ns).Accountant()
	}
	sess, err := dphist.NewSessionWithAccountant(s.mech, acct)
	if err != nil {
		return nil, err
	}
	s.sessions[ns] = sess
	return sess, nil
}

// Session returns the default namespace's budgeted session, for
// embedding callers that also issue releases directly.
func (s *Server) Session() *dphist.Session {
	sess, _ := s.session(dphist.DefaultNamespace)
	return sess
}

// Store returns the release store behind /v1/query, for embedding
// callers that mint or query releases directly.
func (s *Server) Store() *dphist.Store { return s.store }

// requestBuilder assembles the dphist.Request that serves one strategy
// from the server's protected state, or reports why the strategy is not
// servable under the current configuration.
type requestBuilder func(s *Server, eps float64) (dphist.Request, error)

// countsBuilder serves a strategy that consumes the protected count
// vector directly.
func countsBuilder(strategy dphist.Strategy) requestBuilder {
	return func(s *Server, eps float64) (dphist.Request, error) {
		return dphist.Request{Strategy: strategy, Counts: s.cfg.Counts, Epsilon: eps}, nil
	}
}

// registry maps every servable strategy to its request builder. All six
// library strategies are present; future strategies plug in here.
var registry = map[dphist.Strategy]requestBuilder{
	dphist.StrategyUniversal:      countsBuilder(dphist.StrategyUniversal),
	dphist.StrategyLaplace:        countsBuilder(dphist.StrategyLaplace),
	dphist.StrategyUnattributed:   countsBuilder(dphist.StrategyUnattributed),
	dphist.StrategyWavelet:        countsBuilder(dphist.StrategyWavelet),
	dphist.StrategyDegreeSequence: countsBuilder(dphist.StrategyDegreeSequence),
	dphist.StrategyHierarchy: func(s *Server, eps float64) (dphist.Request, error) {
		if s.cfg.Hierarchy == nil {
			return dphist.Request{}, errors.New("hierarchy strategy not configured on this server")
		}
		return dphist.Request{
			Strategy:  dphist.StrategyHierarchy,
			Counts:    s.cfg.Counts,
			Epsilon:   eps,
			Hierarchy: s.cfg.Hierarchy,
		}, nil
	},
	dphist.StrategyUniversal2D: func(s *Server, eps float64) (dphist.Request, error) {
		if s.cfg.Cells == nil {
			return dphist.Request{}, errors.New("universal2d strategy not configured on this server (no 2-D dataset)")
		}
		return dphist.Request{
			Strategy: dphist.StrategyUniversal2D,
			Cells:    s.cfg.Cells,
			Epsilon:  eps,
		}, nil
	},
}

// namespacePattern bounds what a URL path segment may name: tenant
// names stay journal-, log-, and URL-safe. The pattern alone still
// admits the dot segments "." and "..", which proxies and clients
// normalize away before the request ever routes here — nsHandler
// rejects them explicitly, and dphist.ValidateName refuses them at the
// store boundary as a second line of defense.
var namespacePattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// NamespacePath returns the route prefix for a namespace's scoped
// routes, percent-escaping the name so it survives as a single URL path
// segment: NamespacePath("geo.analytics") == "/v1/ns/geo.analytics".
// Clients composing URLs by string concatenation should use this (or
// url.PathEscape) rather than splicing raw names into paths.
func NamespacePath(ns string) string {
	return "/v1/ns/" + url.PathEscape(ns)
}

// nsHandler adapts a namespace-scoped handler to both its unscoped
// route (default namespace) and its /v1/ns/{ns}/ twin.
func (s *Server) nsHandler(fn func(http.ResponseWriter, *http.Request, string)) (plain, scoped http.HandlerFunc) {
	plain = func(w http.ResponseWriter, r *http.Request) {
		fn(w, r, dphist.DefaultNamespace)
	}
	scoped = func(w http.ResponseWriter, r *http.Request) {
		ns := r.PathValue("ns")
		if ns == "." || ns == ".." || !namespacePattern.MatchString(ns) {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid namespace: must match " + namespacePattern.String() + " and not be a dot segment"})
			return
		}
		fn(w, r, ns)
	}
	return plain, scoped
}

// Handler returns the HTTP routes, wrapped in the stats-counting
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/repl/snapshot", s.handleReplSnapshot)
	mux.HandleFunc("GET /v1/repl/stream", s.handleReplStream)
	for _, route := range []struct {
		plain, scoped string
		fn            func(http.ResponseWriter, *http.Request, string)
	}{
		{"GET /v1/budget", "GET /v1/ns/{ns}/budget", s.handleBudget},
		{"GET /v1/strategies", "GET /v1/ns/{ns}/strategies", s.handleStrategies},
		{"POST /v1/release", "POST /v1/ns/{ns}/release", s.handleRelease},
		{"POST /v1/releases", "POST /v1/ns/{ns}/releases", s.handleStoreRelease},
		{"GET /v1/releases", "GET /v1/ns/{ns}/releases", s.handleListReleases},
		{"POST /v1/query", "POST /v1/ns/{ns}/query", s.handleQuery},
		{"POST /v1/query2d", "POST /v1/ns/{ns}/query2d", s.handleQuery2D},
		{"POST /v1/ingest", "POST /v1/ns/{ns}/ingest", s.handleIngest},
		{"POST /v1/ingest/live", "POST /v1/ns/{ns}/ingest/live", s.handleIngestLive},
	} {
		plain, scoped := s.nsHandler(route.fn)
		mux.HandleFunc(route.plain, plain)
		mux.HandleFunc(route.scoped, scoped)
	}
	return s.countRequests(mux)
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush keeps the wrapped writer a streaming one: without it the
// replication stream's per-record flushes would silently buffer until
// the handler returned, turning wake-on-append into wake-on-deadline.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recorderPool recycles statusRecorders: the middleware wraps every
// request, so a per-request allocation here would put a floor under the
// whole hot path.
var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// countRequests is the ops middleware: total and error counts for
// /v1/stats.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reqTotal.Add(1)
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status = w, http.StatusOK
		next.ServeHTTP(rec, r)
		if rec.status >= 400 {
			s.reqErrors.Add(1)
		}
		rec.ResponseWriter = nil
		recorderPool.Put(rec)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// namespaceStats is one namespace's slice of the /v1/stats payload.
type namespaceStats struct {
	Name            string  `json:"name"`
	Releases        int     `json:"releases"`
	BudgetTotal     float64 `json:"budget_total"`
	BudgetSpent     float64 `json:"budget_spent"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// statsResponse is the GET /v1/stats payload.
type statsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Durable       bool             `json:"durable"`
	JournalSeq    uint64           `json:"journal_seq"`
	SnapshotSeq   uint64           `json:"snapshot_seq"`
	Requests      requestStats     `json:"requests"`
	Cache         cacheStats       `json:"cache"`
	Ingest        ingestStats      `json:"ingest"`
	Replication   replicationStats `json:"replication"`
	Namespaces    []namespaceStats `json:"namespaces"`
}

// replicationStats is the cluster-role slice of /v1/stats: enough to
// see lag, stream health, and the last failure without log-diving.
// Role is "primary" (durable, shippable log), "follower", or "none"
// (in-memory, nothing to replicate).
type replicationStats struct {
	Role           string `json:"role"`
	AppliedSeq     uint64 `json:"applied_seq"`
	PrimarySeq     uint64 `json:"primary_seq,omitempty"`
	LagRecords     uint64 `json:"replication_lag_records"`
	State          string `json:"state,omitempty"`
	RecordsApplied int64  `json:"records_applied,omitempty"`
	Snapshots      int64  `json:"snapshots,omitempty"`
	Errors         int64  `json:"errors,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// ingestStats is the streaming write path's slice of /v1/stats: the
// pipeline's cumulative counters, inlined, plus whether it exists at
// all (every counter is zero on a query-only server).
type ingestStats struct {
	Enabled bool `json:"enabled"`
	ingest.Stats
}

type requestStats struct {
	Total          int64 `json:"total"`
	Errors         int64 `json:"errors"`
	ReleasesMinted int64 `json:"releases_minted"`
	RangeQueries   int64 `json:"range_queries"`
	// EncodeErrors counts responses whose JSON encoding failed (the
	// request was otherwise served); nonzero means a handler produced an
	// unencodable value — a server bug worth an alert.
	EncodeErrors int64 `json:"encode_errors,omitempty"`
	// AutoResolved counts "strategy": "auto" mints by the concrete
	// strategy the advisor picked; absent until the first resolution.
	AutoResolved map[string]int64 `json:"auto_resolved,omitempty"`
}

// cacheStats is the answer cache's slice of /v1/stats. HitRatio is
// hits/(hits+misses), 0 before the first query.
type cacheStats struct {
	Enabled  bool    `json:"enabled"`
	Capacity int     `json:"capacity"`
	Entries  int     `json:"entries"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	names := s.store.Namespaces()
	// The default namespace is always reported, even before first use.
	if !slices.Contains(names, dphist.DefaultNamespace) {
		names = append([]string{dphist.DefaultNamespace}, names...)
		sort.Strings(names)
	}
	cs := s.store.CacheStats()
	stats := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Durable:       s.store.Dir() != "",
		JournalSeq:    s.store.JournalSeq(),
		SnapshotSeq:   s.store.SnapshotSeq(),
		Replication:   s.replicationStats(),
		Requests: requestStats{
			Total:          s.reqTotal.Load(),
			Errors:         s.reqErrors.Load(),
			ReleasesMinted: s.mintCount.Load(),
			RangeQueries:   s.queryCount.Load(),
			EncodeErrors:   s.encodeErrors.Load(),
		},
		Cache: cacheStats{
			Enabled:  cs.Capacity > 0,
			Capacity: cs.Capacity,
			Entries:  cs.Entries,
			Hits:     cs.Hits,
			Misses:   cs.Misses,
		},
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		stats.Cache.HitRatio = float64(cs.Hits) / float64(total)
	}
	for _, st := range dphist.Strategies() {
		if n := s.autoResolved[int(st)].Load(); n > 0 {
			if stats.Requests.AutoResolved == nil {
				stats.Requests.AutoResolved = make(map[string]int64)
			}
			stats.Requests.AutoResolved[st.String()] = n
		}
	}
	if s.cfg.Ingester != nil {
		stats.Ingest = ingestStats{Enabled: true, Stats: s.cfg.Ingester.Stats()}
	}
	for _, ns := range names {
		sess, err := s.session(ns)
		if err != nil {
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		acct := sess.Accountant()
		stats.Namespaces = append(stats.Namespaces, namespaceStats{
			Name:            ns,
			Releases:        s.store.Namespace(ns).Len(),
			BudgetTotal:     acct.Total(),
			BudgetSpent:     acct.Spent(),
			BudgetRemaining: acct.Remaining(),
		})
	}
	s.writeJSON(w, http.StatusOK, stats)
}

// budgetResponse is the GET /v1/budget payload.
type budgetResponse struct {
	Namespace string  `json:"namespace"`
	Total     float64 `json:"total"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request, ns string) {
	// A read must not bring a namespace into being: probing arbitrary
	// names would otherwise grow server state without bound. Absent
	// namespaces report the untouched default budget.
	if ns != dphist.DefaultNamespace && !s.store.HasNamespace(ns) {
		total := s.store.Budget()
		s.writeJSON(w, http.StatusOK, budgetResponse{
			Namespace: ns, Total: total, Spent: 0, Remaining: total,
		})
		return
	}
	sess, err := s.session(ns)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	acct := sess.Accountant()
	s.writeJSON(w, http.StatusOK, budgetResponse{
		Namespace: ns,
		Total:     acct.Total(),
		Spent:     acct.Spent(),
		Remaining: acct.Remaining(),
	})
}

// strategiesResponse is the GET /v1/strategies payload: the wire names
// of every strategy this server can currently serve.
type strategiesResponse struct {
	Strategies []string `json:"strategies"`
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request, ns string) {
	names := make([]string, 0, len(registry))
	for strategy := range registry {
		if strategy == dphist.StrategyHierarchy && s.cfg.Hierarchy == nil {
			continue
		}
		if strategy == dphist.StrategyUniversal2D && s.cfg.Cells == nil {
			continue
		}
		names = append(names, strategy.String())
	}
	// "auto" is not a mintable strategy itself but is accepted by the
	// release endpoints whenever at least one concrete strategy is.
	names = append(names, dphist.StrategyAuto.String())
	sort.Strings(names)
	s.writeJSON(w, http.StatusOK, strategiesResponse{Strategies: names})
}

// releaseRequest is the POST /v1/release payload. "task" is accepted as
// a legacy alias for "strategy". With "strategy": "auto", "workload"
// sketches the queries the analyst plans to ask (weighted ranges/rects
// or a named preset such as "count_of_counts") and the server mints the
// predicted-best strategy; the sketch is ignored for concrete
// strategies.
type releaseRequest struct {
	Strategy string                 `json:"strategy"`
	Task     string                 `json:"task,omitempty"`
	Epsilon  float64                `json:"epsilon"`
	Workload *dphist.WorkloadSketch `json:"workload,omitempty"`
}

// releaseResponse wraps a serialized release with accounting info. The
// embedded release payload is self-describing (dphist wire format
// Version) and decodes client-side via dphist.DecodeRelease. Strategy
// is the strategy actually minted — for an auto request, the resolved
// one, with the full decision in Auto.
type releaseResponse struct {
	Version         int                  `json:"version"`
	Strategy        string               `json:"strategy"`
	Epsilon         float64              `json:"epsilon"`
	Domain          int                  `json:"domain"`
	Release         json.RawMessage      `json:"release"`
	Auto            *dphist.AutoDecision `json:"auto,omitempty"`
	BudgetRemaining float64              `json:"budget_remaining"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// buildRequest validates the wire strategy/epsilon pair and assembles
// the library request that serves it, reporting failures as a ready-to-
// write status and message (status 0 means success). "auto" assembles a
// StrategyAuto request carrying the sketch plus every protected input
// the server is configured with, so resolution can consider all of them
// as candidates.
func (s *Server) buildRequest(strategyName, legacyTask string, eps float64, sketch *dphist.WorkloadSketch) (dphist.Request, dphist.Strategy, int, string) {
	if !(eps > 0) {
		return dphist.Request{}, 0, http.StatusBadRequest, "epsilon must be positive"
	}
	if s.cfg.MaxEpsilonPerRequest > 0 && eps > s.cfg.MaxEpsilonPerRequest {
		return dphist.Request{}, 0, http.StatusBadRequest,
			fmt.Sprintf("epsilon %v exceeds per-request cap %v", eps, s.cfg.MaxEpsilonPerRequest)
	}
	name := strategyName
	if name == "" {
		name = legacyTask
	}
	if name == "" {
		name = dphist.StrategyUniversal.String()
	}
	strategy, err := dphist.ParseStrategy(name)
	if err != nil {
		return dphist.Request{}, 0, http.StatusBadRequest, "unknown strategy " + name
	}
	if strategy == dphist.StrategyAuto {
		request := dphist.Request{
			Strategy:  dphist.StrategyAuto,
			Counts:    s.cfg.Counts,
			Cells:     s.cfg.Cells,
			Epsilon:   eps,
			Hierarchy: s.cfg.Hierarchy,
			Workload:  sketch,
		}
		// Resolution re-runs these checks; validating here turns a bad
		// sketch into a 4xx before a session or budget is touched.
		if err := request.Validate(); err != nil {
			return dphist.Request{}, 0, sketchErrorStatus(err), err.Error()
		}
		return request, strategy, 0, ""
	}
	build, ok := registry[strategy]
	if !ok {
		return dphist.Request{}, 0, http.StatusBadRequest, "strategy not served: " + name
	}
	request, err := build(s, eps)
	if err != nil {
		return dphist.Request{}, 0, http.StatusBadRequest, err.Error()
	}
	return request, strategy, 0, ""
}

// sketchErrorStatus maps an auto-validation failure onto a client
// status: domains too large for exact prediction are unprocessable
// content, everything else a plain bad request.
func sketchErrorStatus(err error) int {
	if errors.Is(err, dphist.ErrDomainTooLarge) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// writeReleaseError maps a refused or failed mint onto a status code:
// budget exhaustion is the analyst's problem (429), a read-only replica
// is a routing problem (403 — mint on the primary), a bad workload
// sketch (400) or a domain too large for exact prediction (422) the
// request's, everything else the server's (500).
func (s *Server) writeReleaseError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, dphist.ErrBudgetExceeded):
		status = http.StatusTooManyRequests
	case errors.Is(err, dphist.ErrReadOnly):
		status = http.StatusForbidden
	case errors.Is(err, dphist.ErrDomainTooLarge):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, dphist.ErrBadSketch):
		status = http.StatusBadRequest
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// refuseOnFollower short-circuits a write route on a follower with 403.
// The store's own ErrReadOnly gate backs this up for embedded callers;
// refusing at the route spares the follower building a doomed request.
func (s *Server) refuseOnFollower(w http.ResponseWriter) bool {
	if !s.cfg.Follower {
		return false
	}
	s.writeJSON(w, http.StatusForbidden, errorResponse{Error: "read-only follower: send writes to the primary"})
	return true
}

// maxRequestBody caps request bodies before JSON decoding: 4 MiB fits a
// maxQueryRanges batch comfortably while keeping one oversized POST
// from materializing gigabytes in the decoder.
const maxRequestBody = 4 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(v)
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request, ns string) {
	if s.refuseOnFollower(w) {
		return
	}
	var req releaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	request, _, status, msg := s.buildRequest(req.Strategy, req.Task, req.Epsilon, req.Workload)
	if status != 0 {
		s.writeJSON(w, status, errorResponse{Error: msg})
		return
	}
	sess, err := s.session(ns)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	// The session charges the budget after request validation (and auto
	// resolution) but BEFORE computing: malformed requests cost nothing,
	// and a refused charge leaks nothing beyond the refusal itself.
	release, err := sess.Release(request)
	if err != nil {
		s.writeReleaseError(w, err)
		return
	}
	s.mintCount.Add(1)
	auto := s.noteAutoDecision(release)
	raw, err := json.Marshal(release)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, releaseResponse{
		Version:         dphist.WireVersion,
		Strategy:        release.Strategy().String(),
		Epsilon:         req.Epsilon,
		Domain:          len(s.cfg.Counts),
		Release:         raw,
		Auto:            auto,
		BudgetRemaining: sess.Remaining(),
	})
}

// storeReleaseRequest is the POST /v1/releases payload: mint a release
// and retain it under Name for later /v1/query batches. "strategy":
// "auto" with a workload sketch mints and stores the predicted-best
// strategy; the journal records the resolved strategy, never the
// sentinel.
type storeReleaseRequest struct {
	Name     string                 `json:"name"`
	Strategy string                 `json:"strategy"`
	Epsilon  float64                `json:"epsilon"`
	Workload *dphist.WorkloadSketch `json:"workload,omitempty"`
}

// storedReleaseInfo summarizes one stored release on the wire.
type storedReleaseInfo struct {
	Namespace string    `json:"namespace"`
	Name      string    `json:"name"`
	Version   int       `json:"version"`
	Strategy  string    `json:"strategy"`
	Epsilon   float64   `json:"epsilon"`
	Domain    int       `json:"domain"`
	StoredAt  time.Time `json:"stored_at"`
}

func wireEntry(e dphist.StoreEntry) storedReleaseInfo {
	return storedReleaseInfo{
		Namespace: e.Namespace,
		Name:      e.Name,
		Version:   e.Version,
		Strategy:  e.Strategy.String(),
		Epsilon:   e.Epsilon,
		Domain:    e.Domain,
		StoredAt:  e.StoredAt,
	}
}

// storeReleaseResponse is the POST /v1/releases reply: the stored
// entry's metadata plus the self-describing release payload, so the
// analyst can also query offline via dphist.DecodeRelease. Auto carries
// the resolution decision when the mint used "strategy": "auto".
type storeReleaseResponse struct {
	storedReleaseInfo
	Release         json.RawMessage      `json:"release"`
	Auto            *dphist.AutoDecision `json:"auto,omitempty"`
	BudgetRemaining float64              `json:"budget_remaining"`
}

func (s *Server) handleStoreRelease(w http.ResponseWriter, r *http.Request, ns string) {
	if s.refuseOnFollower(w) {
		return
	}
	var req storeReleaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if req.Name == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "name is required"})
		return
	}
	request, _, status, msg := s.buildRequest(req.Strategy, "", req.Epsilon, req.Workload)
	if status != 0 {
		s.writeJSON(w, status, errorResponse{Error: msg})
		return
	}
	sess, err := s.session(ns)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	release, entry, err := s.store.Namespace(ns).Mint(sess, req.Name, request)
	if err != nil {
		s.writeReleaseError(w, err)
		return
	}
	s.mintCount.Add(1)
	auto := s.noteAutoDecision(release)
	raw, err := json.Marshal(release)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, storeReleaseResponse{
		storedReleaseInfo: wireEntry(entry),
		Release:           raw,
		Auto:              auto,
		BudgetRemaining:   sess.Remaining(),
	})
}

// listReleasesResponse is the GET /v1/releases payload.
type listReleasesResponse struct {
	Releases []storedReleaseInfo `json:"releases"`
}

func (s *Server) handleListReleases(w http.ResponseWriter, r *http.Request, ns string) {
	entries := s.store.Namespace(ns).List()
	out := make([]storedReleaseInfo, len(entries))
	for i, e := range entries {
		out[i] = wireEntry(e)
	}
	s.writeJSON(w, http.StatusOK, listReleasesResponse{Releases: out})
}

// maxQueryRanges bounds one /v1/query batch; query answering is cheap
// (O(log n) per range, no budget) but unbounded batches would let one
// analyst monopolize the connection.
const maxQueryRanges = 100000

// queryRequest is the POST /v1/query payload: a batch of half-open
// ranges to answer against the stored release called Name.
type queryRequest struct {
	Name   string             `json:"name"`
	Ranges []dphist.RangeSpec `json:"ranges"`
}

// queryResponse aligns Answers with the request's Ranges by index.
type queryResponse struct {
	Namespace string    `json:"namespace"`
	Name      string    `json:"name"`
	Version   int       `json:"version"`
	Strategy  string    `json:"strategy"`
	Answers   []float64 `json:"answers"`
}

// handleQuery is the serving hot path: pooled scratch end to end (body,
// specs, answers, response bytes), the wire.go hand-rolled parser
// instead of reflection, and Namespace.QueryInto appending into the
// scratch's answer buffer. Steady state is ~1 amortized allocation per
// request; TestServerQueryAllocs holds the line.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, ns string) {
	sc := queryScratchPool.Get().(*queryScratch)
	defer queryScratchPool.Put(sc)
	if !s.readBody(w, r, sc) {
		return
	}
	name, specs, err := parseQueryRequest(sc, maxQueryRanges)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if name == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "name is required"})
		return
	}
	answers, entry, err := s.nsView(ns).QueryInto(sc.answers[:0], name, specs)
	sc.answers = answers[:0]
	if err != nil {
		s.serveQueryError(w, err)
		return
	}
	s.queryCount.Add(1)
	s.writeQueryResponse(w, sc, entry, answers)
}

// query2DRequest is the POST /v1/query2d payload: a batch of half-open
// rectangles to answer against the stored 2-D release called Name.
type query2DRequest struct {
	Name  string            `json:"name"`
	Rects []dphist.RectSpec `json:"rects"`
}

// query2DResponse aligns Answers with the request's Rects by index.
type query2DResponse struct {
	Namespace string    `json:"namespace"`
	Name      string    `json:"name"`
	Version   int       `json:"version"`
	Strategy  string    `json:"strategy"`
	Answers   []float64 `json:"answers"`
}

// handleQuery2D mirrors handleQuery's pooled path for rectangle
// batches. ErrNotRectangular and malformed specs are both the analyst's
// request to fix, so every non-404 failure maps to 400.
func (s *Server) handleQuery2D(w http.ResponseWriter, r *http.Request, ns string) {
	sc := queryScratchPool.Get().(*queryScratch)
	defer queryScratchPool.Put(sc)
	if !s.readBody(w, r, sc) {
		return
	}
	name, rects, err := parseQuery2DRequest(sc, maxQueryRanges)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if name == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "name is required"})
		return
	}
	answers, entry, err := s.nsView(ns).QueryRectsInto(sc.answers[:0], name, rects)
	sc.answers = answers[:0]
	if err != nil {
		s.serveQueryError(w, err)
		return
	}
	s.queryCount.Add(1)
	s.writeQueryResponse(w, sc, entry, answers)
}

// maxIngestEvents bounds one POST /v1/ingest batch, mirroring
// maxQueryRanges on the read side: the pipeline absorbs sustained load
// through many batches, not one unbounded body.
const maxIngestEvents = 100000

// ingestRequest is the POST /v1/ingest payload: a batch of events for
// the namespace's streams. Omitted weights count as 1.
type ingestRequest struct {
	Events []ingest.Event `json:"events"`
}

// ingestResponse reports the batch outcome. Dropped events (bucket out
// of range, bad weight or stream name) are skipped, not fatal: the rest
// of the batch is absorbed.
type ingestResponse struct {
	Namespace string `json:"namespace"`
	Accepted  int    `json:"accepted"`
	Dropped   int    `json:"dropped"`
}

// writeIngestError maps pipeline failures: a closed pipeline is the
// server shutting down (503), anything else is the caller's request.
func (s *Server) writeIngestError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ingest.ErrClosed) {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, ns string) {
	if s.refuseOnFollower(w) {
		return
	}
	if s.cfg.Ingester == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "streaming ingest not configured on this server"})
		return
	}
	var req ingestRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if len(req.Events) == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "events is required"})
		return
	}
	if len(req.Events) > maxIngestEvents {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d events exceeds limit %d", len(req.Events), maxIngestEvents)})
		return
	}
	accepted, err := s.cfg.Ingester.Ingest(ns, req.Events)
	if err != nil {
		s.writeIngestError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ingestResponse{
		Namespace: ns,
		Accepted:  accepted,
		Dropped:   len(req.Events) - accepted,
	})
}

// ingestLiveRequest is the POST /v1/ingest/live payload: which buckets
// of which stream to read from the continual-count surface.
type ingestLiveRequest struct {
	Stream  string `json:"stream"`
	Buckets []int  `json:"buckets"`
}

// ingestLiveResponse aligns Counts with the request's Buckets by index:
// the private running totals since the pipeline started, fresher than
// the last epoch mint.
type ingestLiveResponse struct {
	Namespace string    `json:"namespace"`
	Stream    string    `json:"stream"`
	Counts    []float64 `json:"counts"`
}

func (s *Server) handleIngestLive(w http.ResponseWriter, r *http.Request, ns string) {
	if s.cfg.Ingester == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "streaming ingest not configured on this server"})
		return
	}
	var req ingestLiveRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if req.Stream == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "stream is required"})
		return
	}
	if len(req.Buckets) > maxQueryRanges {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d buckets exceeds limit %d", len(req.Buckets), maxQueryRanges)})
		return
	}
	counts, err := s.cfg.Ingester.LiveCounts(ns, req.Stream, req.Buckets)
	if err != nil {
		if errors.Is(err, ingest.ErrLiveDisabled) {
			s.writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		s.writeIngestError(w, err)
		return
	}
	s.queryCount.Add(1)
	if counts == nil {
		counts = []float64{} // empty batch encodes as [], not null
	}
	s.writeJSON(w, http.StatusOK, ingestLiveResponse{
		Namespace: ns,
		Stream:    req.Stream,
		Counts:    counts,
	})
}

// jsonBufPool recycles encode buffers for writeJSON's cold paths.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v into a pooled buffer before touching the
// response. Encoding first means a failure becomes a clean 500 plus an
// encode_errors tick in /v1/stats — the previous
// json.NewEncoder(w).Encode(v) swallowed the error after the status
// line was already on the wire, leaving the client a truncated 200.
// Cold paths only; the query hot path writes pre-encoded bytes.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	defer jsonBufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		s.encodeErrors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, "{\"error\":\"internal: response encoding failed\"}\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}
