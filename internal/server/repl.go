package server

// The replication surface: how a primary ships its write-ahead log to
// followers. GET /v1/repl/snapshot serves a full-state bootstrap
// snapshot; GET /v1/repl/stream?from=seq serves journal records from
// the given sequence as chunked NDJSON, long-polling when the follower
// is caught up. Replication ships already-noised releases in their
// journaled wire form, so the surface is privacy-neutral — exposing it
// costs no budget — but it does expose the full release inventory, so
// deployments should restrict it to cluster-internal networks the same
// way they restrict the data directory.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/journal"
)

// journalSeqHeader carries the primary's current journal frontier on
// replication responses, so a follower can compute its lag without a
// second round trip.
const journalSeqHeader = "X-Dphist-Journal-Seq"

// defaultReplPollWindow bounds a caught-up stream long-poll. It must
// stay under dphist-server's 30s write timeout, or the parked poll is
// killed mid-air and the follower sees a truncated chunk instead of a
// clean empty one.
const defaultReplPollWindow = 20 * time.Second

// replicationStats assembles the /v1/stats replication block.
func (s *Server) replicationStats() replicationStats {
	rs := replicationStats{Role: "none", AppliedSeq: s.store.AppliedSeq()}
	switch {
	case s.cfg.Follower:
		rs.Role = "follower"
		if s.cfg.ReplStats != nil {
			t := s.cfg.ReplStats()
			rs.State = t.State
			rs.PrimarySeq = t.PrimarySeq
			rs.RecordsApplied = t.RecordsApplied
			rs.Snapshots = t.Snapshots
			rs.Errors = t.Errors
			rs.LastError = t.LastError
			if t.PrimarySeq > rs.AppliedSeq {
				rs.LagRecords = t.PrimarySeq - rs.AppliedSeq
			}
		}
	case s.store.Dir() != "":
		rs.Role = "primary"
	}
	return rs
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	data, seq, err := s.store.ReplicationSnapshot()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, dphist.ErrNotReplicable) {
			status = http.StatusNotFound
		}
		s.writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(journalSeqHeader, strconv.FormatUint(seq, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleReplStream serves journal records with seq >= from as NDJSON,
// one journal.Record per line. A caught-up follower is parked on the
// journal's append signal until new records land or the poll window
// expires; either way the response ends and the follower immediately
// re-polls from its new position. A from at or below the compaction
// horizon answers 410 Gone: the records live only in the snapshot now,
// so the follower must bootstrap via /v1/repl/snapshot instead.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "from must be a positive sequence number"})
		return
	}
	window := s.cfg.ReplPollWindow
	if window <= 0 {
		window = defaultReplPollWindow
	}
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	wrote := false
	for {
		// Take the append signal BEFORE reading: an append that lands
		// between the read and the wait closes the already-held channel,
		// so the loop can never park across a missed record.
		sig := s.store.ReplicationSignal()
		recs, err := s.store.ReplicationRead(from)
		if err != nil {
			if wrote {
				return // headers are gone; the follower re-polls and sees the status
			}
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, journal.ErrCompacted):
				status = http.StatusGone
			case errors.Is(err, dphist.ErrNotReplicable):
				status = http.StatusNotFound
			}
			s.writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		if len(recs) > 0 {
			if !wrote {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.Header().Set(journalSeqHeader, strconv.FormatUint(s.store.JournalSeq(), 10))
				w.WriteHeader(http.StatusOK)
				wrote = true
			}
			for _, rec := range recs {
				if err := enc.Encode(rec); err != nil {
					return // client went away mid-chunk
				}
			}
			from = recs[len(recs)-1].Seq + 1
			if flusher != nil {
				flusher.Flush()
			}
		}
		select {
		case <-sig:
		case <-r.Context().Done():
			return
		case <-deadline.C:
			if !wrote {
				// A clean empty chunk: caught up, nothing new this window.
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.Header().Set(journalSeqHeader, strconv.FormatUint(s.store.JournalSeq(), 10))
				w.WriteHeader(http.StatusOK)
			}
			return
		}
	}
}
