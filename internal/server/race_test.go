//go:build race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build. Allocation-count assertions are meaningless under -race: the
// instrumentation itself allocates per request.
const raceEnabled = true
