package server

// Tests for the replication HTTP surface: the snapshot bootstrap
// endpoint, the NDJSON stream's long-poll and compaction semantics,
// follower route refusals, and the stats visibility satellites.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/journal"
)

// newDurableServer builds a server over a durable store in a temp dir
// with a short stream poll window so caught-up polls return quickly.
func newDurableServer(t *testing.T) (*dphist.Store, *httptest.Server) {
	t.Helper()
	store, err := dphist.OpenStore(t.TempDir(), dphist.WithBudget(4.0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s, err := New(Config{
		Counts:         []float64{2, 0, 10, 2, 5, 5, 5, 5},
		Store:          store,
		Seed:           7,
		ReplPollWindow: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func mintOne(t *testing.T, ts *httptest.Server, name string, eps float64) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"`+name+`","strategy":"universal","epsilon":`+jsonFloat(eps)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mint %s: HTTP %d", name, resp.StatusCode)
	}
}

func jsonFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func streamRecords(t *testing.T, ts *httptest.Server, from string) (*http.Response, []journal.Record) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/repl/stream?from=" + from)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []journal.Record
	if resp.StatusCode == http.StatusOK {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var rec journal.Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			recs = append(recs, rec)
		}
	}
	return resp, recs
}

func TestReplStreamServesJournal(t *testing.T) {
	store, ts := newDurableServer(t)
	mintOne(t, ts, "traffic", 0.5)
	mintOne(t, ts, "traffic", 0.25) // version 2
	resp, recs := streamRecords(t, ts, "1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// Each mint journals a put and a charge: 4 records, seqs 1..4.
	if len(recs) != 4 || recs[0].Seq != 1 || recs[3].Seq != 4 {
		t.Fatalf("got %d records, seqs %v..%v", len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
	if got := resp.Header.Get("X-Dphist-Journal-Seq"); got != "4" {
		t.Fatalf("journal seq header = %q, want 4", got)
	}
	if store.JournalSeq() != 4 {
		t.Fatalf("JournalSeq = %d", store.JournalSeq())
	}
	// Caught up: the long-poll parks for the window, then returns an
	// empty 200 chunk rather than an error.
	start := time.Now()
	resp, recs = streamRecords(t, ts, "5")
	if resp.StatusCode != http.StatusOK || len(recs) != 0 {
		t.Fatalf("caught-up poll: HTTP %d with %d records", resp.StatusCode, len(recs))
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("caught-up poll returned in %v, did not park", elapsed)
	}
	// Bad from values are the caller's problem.
	for _, from := range []string{"0", "-1", "x", ""} {
		if resp, _ := streamRecords(t, ts, from); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("from=%q: HTTP %d, want 400", from, resp.StatusCode)
		}
	}
}

// TestReplStreamWakesOnAppend pins the long-poll's latency contract: a
// parked stream must deliver a fresh append promptly (flushed through
// the middleware), not sit on it until the poll window expires.
func TestReplStreamWakesOnAppend(t *testing.T) {
	store, ts := newDurableServer(t)
	mintOne(t, ts, "traffic", 0.5)
	_ = store
	type line struct {
		rec journal.Record
		at  time.Time
	}
	lines := make(chan line, 4)
	go func() {
		// Get parks with the poll: the response headers only arrive once
		// the handler commits its first write.
		resp, err := http.Get(ts.URL + "/v1/repl/stream?from=3")
		if err != nil {
			close(lines)
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		for {
			raw, err := br.ReadBytes('\n')
			if err != nil {
				close(lines)
				return
			}
			var rec journal.Record
			if json.Unmarshal(raw, &rec) == nil {
				lines <- line{rec, time.Now()}
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the poll park
	minted := time.Now()
	mintOne(t, ts, "traffic", 0.25)
	select {
	case l, ok := <-lines:
		if !ok {
			t.Fatal("stream ended without delivering the appended record")
		}
		if l.rec.Seq != 3 {
			t.Fatalf("first streamed record has seq %d, want 3", l.rec.Seq)
		}
		// The poll window is 100ms; a delivery near it means the append
		// signal or a Flush along the middleware chain is broken.
		if d := l.at.Sub(minted); d > 80*time.Millisecond {
			t.Fatalf("record arrived %v after the mint, at the poll deadline instead of on append", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("streamed record never arrived")
	}
}

func TestReplStreamCompactionAndSnapshot(t *testing.T) {
	store, ts := newDurableServer(t)
	mintOne(t, ts, "traffic", 0.5)
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The early records live only in the snapshot now: 410 tells the
	// follower to bootstrap.
	resp, _ := streamRecords(t, ts, "1")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("compacted stream: HTTP %d, want 410", resp.StatusCode)
	}
	snap, err := http.Get(ts.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Body.Close()
	if snap.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d", snap.StatusCode)
	}
	var decoded struct {
		Seq     uint64            `json:"seq"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.NewDecoder(snap.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Seq != store.JournalSeq() || len(decoded.Entries) != 1 {
		t.Fatalf("snapshot seq %d entries %d, journal at %d", decoded.Seq, len(decoded.Entries), store.JournalSeq())
	}
}

func TestReplSurfaceRequiresDurableStore(t *testing.T) {
	ts := newTestServer(t, 1.0) // in-memory store: nothing to replicate
	resp, err := http.Get(ts.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot on in-memory store: HTTP %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/repl/stream?from=1")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream on in-memory store: HTTP %d, want 404", resp.StatusCode)
	}
}

// newFollowerServer builds a follower-mode server over an in-memory
// replica store, with a stubbed tailer status.
func newFollowerServer(t *testing.T, primarySeq uint64) (*dphist.Store, *httptest.Server) {
	t.Helper()
	store := dphist.NewReplica(dphist.WithBudget(4.0))
	s, err := New(Config{
		Store:    store,
		Follower: true,
		Seed:     7,
		ReplStats: func() ReplicationStatus {
			return ReplicationStatus{State: "streaming", PrimarySeq: primarySeq}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func TestFollowerRefusesWrites(t *testing.T) {
	store, ts := newFollowerServer(t, 3)
	for _, tc := range []struct{ path, body string }{
		{"/v1/release", `{"strategy":"universal","epsilon":0.1}`},
		{"/v1/releases", `{"name":"x","strategy":"universal","epsilon":0.1}`},
		{"/v1/ns/tenant/releases", `{"name":"x","strategy":"universal","epsilon":0.1}`},
		{"/v1/ingest", `{"events":[{"stream":"s","bucket":0}]}`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("POST %s on follower: HTTP %d, want 403", tc.path, resp.StatusCode)
		}
	}
	// Reads still serve: the shipped release is queryable.
	if err := store.Apply(journal.Record{Seq: 1, Op: journal.OpCharge, Namespace: "default", Label: "shipped", Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b budgetResponse
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Spent != 0.5 {
		t.Fatalf("follower budget spent = %v, want the shipped 0.5", b.Spent)
	}
}

func TestStatsReplicationVisibility(t *testing.T) {
	// Primary: role + journal/snapshot seqs.
	store, ts := newDurableServer(t)
	mintOne(t, ts, "traffic", 0.5)
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		JournalSeq  uint64 `json:"journal_seq"`
		SnapshotSeq uint64 `json:"snapshot_seq"`
		Replication struct {
			Role       string `json:"role"`
			AppliedSeq uint64 `json:"applied_seq"`
			LagRecords uint64 `json:"replication_lag_records"`
			State      string `json:"state"`
		} `json:"replication"`
	}
	getStats := func(url string) {
		t.Helper()
		resp, err := http.Get(url + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
	}
	getStats(ts.URL)
	if stats.Replication.Role != "primary" || stats.JournalSeq != 2 || stats.SnapshotSeq != 2 {
		t.Fatalf("primary stats = %+v", stats)
	}
	// Follower: lag = primary frontier minus applied.
	fstore, fts := newFollowerServer(t, 3)
	if err := fstore.Apply(journal.Record{Seq: 1, Op: journal.OpCharge, Namespace: "default", Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	getStats(fts.URL)
	if stats.Replication.Role != "follower" || stats.Replication.AppliedSeq != 1 ||
		stats.Replication.LagRecords != 2 || stats.Replication.State != "streaming" {
		t.Fatalf("follower stats = %+v", stats.Replication)
	}
}
