package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/dphist/dphist"
)

// --- parser equivalence with encoding/json ---

// checkQueryParse holds parseQueryRequest to json.Unmarshal's observable
// behavior on one input: same accept/reject verdict, and on accept the
// same name and spec sequence.
func checkQueryParse(t *testing.T, data []byte, maxSpecs int) {
	t.Helper()
	var want queryRequest
	jerr := json.Unmarshal(data, &want)
	sc := &queryScratch{body: append([]byte(nil), data...)}
	name, specs, perr := parseQueryRequest(sc, maxSpecs)
	if jerr != nil {
		if perr == nil {
			t.Fatalf("parser accepted %q which encoding/json rejects (%v)", data, jerr)
		}
		return
	}
	if perr != nil {
		t.Fatalf("parser rejected %q which encoding/json accepts: %v", data, perr)
	}
	if name != want.Name {
		t.Fatalf("parse %q: name %q, encoding/json got %q", data, name, want.Name)
	}
	if len(specs) != len(want.Ranges) {
		t.Fatalf("parse %q: %d specs, encoding/json got %d", data, len(specs), len(want.Ranges))
	}
	for i := range specs {
		if specs[i] != want.Ranges[i] {
			t.Fatalf("parse %q: spec %d = %+v, encoding/json got %+v", data, i, specs[i], want.Ranges[i])
		}
	}
}

func checkQuery2DParse(t *testing.T, data []byte, maxSpecs int) {
	t.Helper()
	var want query2DRequest
	jerr := json.Unmarshal(data, &want)
	sc := &queryScratch{body: append([]byte(nil), data...)}
	name, rects, perr := parseQuery2DRequest(sc, maxSpecs)
	if jerr != nil {
		if perr == nil {
			t.Fatalf("2d parser accepted %q which encoding/json rejects (%v)", data, jerr)
		}
		return
	}
	if perr != nil {
		t.Fatalf("2d parser rejected %q which encoding/json accepts: %v", data, perr)
	}
	if name != want.Name {
		t.Fatalf("2d parse %q: name %q, encoding/json got %q", data, name, want.Name)
	}
	if len(rects) != len(want.Rects) {
		t.Fatalf("2d parse %q: %d rects, encoding/json got %d", data, len(rects), len(want.Rects))
	}
	for i := range rects {
		if rects[i] != want.Rects[i] {
			t.Fatalf("2d parse %q: rect %d = %+v, encoding/json got %+v", data, i, rects[i], want.Rects[i])
		}
	}
}

// queryParseCorpus is the deterministic edge-case battery; the fuzz
// target reuses it as its seed corpus.
var queryParseCorpus = []string{
	`{"name":"t","ranges":[{"lo":0,"hi":4}]}`,
	`{"name":"t","ranges":[]}`,
	`{"name":"t"}`,
	`{"ranges":[{"lo":1,"hi":2}]}`,
	`{}`,
	`null`,
	` { "name" : "t" , "ranges" : [ { "lo" : 1 , "hi" : 2 } ] } `,
	// Case-insensitive field matching, as encoding/json folds names.
	`{"NAME":"t","RANGES":[{"LO":1,"HI":2}]}`,
	`{"Name":"t","Ranges":[{"Lo":1,"Hi":2}]}`,
	// Duplicate keys: last value wins, null is a no-op, a shorter
	// duplicate array inherits the longer one's slots on re-growth.
	`{"name":"a","name":"b"}`,
	`{"name":"a","name":null}`,
	`{"ranges":[{"lo":5,"hi":9}],"ranges":[{"hi":1}]}`,
	`{"ranges":[{"lo":5,"hi":9}],"ranges":[null]}`,
	`{"ranges":[{"lo":1,"hi":2},{"lo":3,"hi":4}],"ranges":[{}],"ranges":[{},{}]}`,
	`{"ranges":[{"lo":1,"hi":2}],"ranges":null}`,
	`{"ranges":null}`,
	`{"ranges":null,"ranges":[{"lo":1,"hi":2}]}`,
	`{"ranges":[{"lo":1,"lo":2,"hi":3}]}`,
	// Unknown fields are skipped with full syntactic validation.
	`{"name":"t","extra":{"deep":[1,2,{"x":"y"}]},"ranges":[]}`,
	`{"unknown":01}`,
	`{"unknown":1.5e+30,"name":"t"}`,
	`{"unknown":"𝄞"}`,
	// String escapes: full set, surrogate pairs, lone surrogates,
	// invalid UTF-8 replaced.
	`{"name":"A\n\t\"\\\/\b\f\r"}`,
	`{"name":"𝄞"}`,
	`{"name":"\ud834"}`,
	`{"name":"\ud834A"}`,
	`{"name":"\udd1e\udd1e"}`,
	"{\"name\":\"\xff\xfe\"}",
	"{\"name\":\"caf\xc3\xa9\"}",
	// Integer semantics: strconv.ParseInt as encoding/json applies it.
	`{"ranges":[{"lo":-3,"hi":-1}]}`,
	`{"ranges":[{"lo":0,"hi":9223372036854775807}]}`,
	`{"ranges":[{"lo":-9223372036854775808,"hi":0}]}`,
	`{"ranges":[{"lo":9223372036854775808}]}`,
	`{"ranges":[{"lo":01}]}`,
	`{"ranges":[{"lo":1.0}]}`,
	`{"ranges":[{"lo":1e2}]}`,
	`{"ranges":[{"lo":+1}]}`,
	`{"ranges":[{"lo":-0}]}`,
	`{"ranges":[{"lo":null,"hi":null}]}`,
	// Wrong types and malformed bodies.
	`{"name":5}`,
	`{"name":["a"]}`,
	`{"ranges":{"lo":1}}`,
	`{"ranges":[[1,2]]}`,
	`{"ranges":[true]}`,
	`{"ranges":["x"]}`,
	`true`,
	`"str"`,
	`42`,
	`[]`,
	``,
	`   `,
	`{`,
	`{"name":"t"`,
	`{"name":"t",}`,
	`{"name":"t" "ranges":[]}`,
	`{"name":}`,
	`{"ranges":[{"lo":1,}]}`,
	`{"ranges":[{"lo":1}]}extra`,
	`{"name":"t"}{"name":"u"}`,
	"{\"name\":\"a\x01b\"}",
	`{"name":"\q"}`,
	`{"name":"\u12"}`,
	`{5:1}`,
	`{"":1}`,
}

func TestQueryParseEquivalenceCorpus(t *testing.T) {
	for _, in := range queryParseCorpus {
		checkQueryParse(t, []byte(in), maxQueryRanges)
		checkQuery2DParse(t, []byte(in), maxQueryRanges)
	}
	// Rect-shaped cases with all four corner fields.
	for _, in := range []string{
		`{"name":"g","rects":[{"x0":0,"y0":0,"x1":2,"y1":2}]}`,
		`{"name":"g","rects":[{"X0":1,"Y1":3}]}`,
		`{"rects":[{"x0":1,"x0":2}],"rects":[{}]}`,
		`{"rects":[{"x0":"no"}]}`,
		`{"rects":[null,{"y0":1}]}`,
	} {
		checkQuery2DParse(t, []byte(in), maxQueryRanges)
	}
}

// FuzzQueryRequestParse is the acceptance bar for the hand-rolled
// parser: on every input it must agree with encoding/json — accept the
// same bodies, produce the same name and specs, reject the rest — and
// never panic. The twoD flag exercises the rect-shaped twin.
func FuzzQueryRequestParse(f *testing.F) {
	for _, in := range queryParseCorpus {
		f.Add([]byte(in), false)
		f.Add([]byte(in), true)
	}
	f.Add([]byte(`{"name":"g","rects":[{"x0":0,"y0":0,"x1":2,"y1":2}]}`), true)
	f.Fuzz(func(t *testing.T, data []byte, twoD bool) {
		// The route cap is part of the handler, not the grammar; lift it
		// so equivalence is judged against plain json.Unmarshal.
		if twoD {
			checkQuery2DParse(t, data, math.MaxInt)
		} else {
			checkQueryParse(t, data, math.MaxInt)
		}
	})
}

// --- response encoding equivalence ---

func TestAppendQueryResponseMatchesEncodingJSON(t *testing.T) {
	entries := []dphist.StoreEntry{
		{Namespace: "default", Name: "traffic", Version: 3, Strategy: dphist.StrategyUniversal},
		{Namespace: "geo.analytics", Name: "a<b>&  é\x80", Version: 0, Strategy: dphist.StrategyLaplace},
	}
	batches := [][]float64{
		{},
		{0, 1, -1, 2.5},
		{1e21, -1e21, 9.5e20, 1e-6, 9.9e-7, -1e-7, 0.1, 1.0 / 3.0},
		{math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0},
	}
	for _, e := range entries {
		for _, answers := range batches {
			got, err := appendQueryResponse(nil, e, answers)
			if err != nil {
				t.Fatalf("appendQueryResponse(%v): %v", answers, err)
			}
			if answers == nil {
				answers = []float64{}
			}
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(queryResponse{
				Namespace: e.Namespace,
				Name:      e.Name,
				Version:   e.Version,
				Strategy:  e.Strategy.String(),
				Answers:   answers,
			}); err != nil {
				t.Fatal(err)
			}
			if string(got) != buf.String() {
				t.Fatalf("wire bytes diverge from encoding/json:\n got %q\nwant %q", got, buf.String())
			}
		}
	}
	if _, err := appendQueryResponse(nil, entries[0], []float64{math.NaN()}); err == nil {
		t.Fatal("NaN answer encoded without error")
	}
	if _, err := appendQueryResponse(nil, entries[0], []float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf answer encoded without error")
	}
}

// --- HTTP-level malformed requests: 400 with a spec index ---

func TestQueryMalformedRequests(t *testing.T) {
	ts := newTestServer(t, 2.0)
	if resp, body := postJSON(t, ts, "/v1/releases",
		`{"name":"t","strategy":"universal","epsilon":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mint: %d %s", resp.StatusCode, body)
	}
	cases := []struct {
		name, body, wantSub string
	}{
		{"truncated body", `{"name":"t","ranges":[{"lo":0,`, "malformed request"},
		{"truncated string", `{"name":"t`, "malformed request"},
		{"wrong name type", `{"name":5,"ranges":[]}`, "malformed request"},
		{"wrong ranges type", `{"name":"t","ranges":{"lo":1}}`, "expected array"},
		{"wrong spec type", `{"name":"t","ranges":[42]}`, "ranges[0]"},
		{"bad field type with index", `{"name":"t","ranges":[{"lo":0,"hi":4},{"lo":"x"}]}`, "ranges[1].lo"},
		{"float in int field", `{"name":"t","ranges":[{"lo":0,"hi":1.5}]}`, "ranges[0].hi"},
		{"trailing garbage", `{"name":"t","ranges":[]}extra`, "after top-level value"},
		{"oversize batch", oversizeBatch(), "exceeds limit"},
		{"semantically invalid spec index", `{"name":"t","ranges":[{"lo":0,"hi":4},{"lo":3,"hi":1}]}`, "query 1"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, "/v1/query", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(string(body), tc.wantSub) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.wantSub)
		}
	}
	// Duplicate keys are legal JSON: last value wins, like encoding/json.
	resp, body := postJSON(t, ts, "/v1/query",
		`{"name":"zzz","name":"t","ranges":[{"lo":9,"hi":9}],"ranges":[{"lo":0,"hi":8}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate keys: %d %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Name != "t" || len(qr.Answers) != 1 {
		t.Fatalf("duplicate keys answered %+v", qr)
	}
}

func oversizeBatch() string {
	var b strings.Builder
	b.WriteString(`{"name":"t","ranges":[`)
	for i := 0; i <= maxQueryRanges; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"lo":0,"hi":1}`)
	}
	b.WriteString(`]}`)
	return b.String()
}

// --- pooled buffers must not alias across requests ---

// TestQueryScratchNoAliasing replays the same request between other
// requests with different shapes and asserts byte-identical responses:
// if any pooled buffer leaked state between requests, the replay would
// see it.
func TestQueryScratchNoAliasing(t *testing.T) {
	ts := newTestServer(t, 4.0)
	for _, mint := range []string{
		`{"name":"alpha","strategy":"universal","epsilon":0.5}`,
		`{"name":"beta","strategy":"laplace","epsilon":0.5}`,
	} {
		if resp, body := postJSON(t, ts, "/v1/releases", mint); resp.StatusCode != http.StatusOK {
			t.Fatalf("mint: %d %s", resp.StatusCode, body)
		}
	}
	reqA := `{"name":"alpha","ranges":[{"lo":0,"hi":8},{"lo":2,"hi":4}]}`
	_, first := postJSON(t, ts, "/v1/query", reqA)
	baseline := string(first)
	interleaved := []string{
		`{"name":"beta","ranges":[{"lo":0,"hi":1},{"lo":1,"hi":2},{"lo":2,"hi":3},{"lo":3,"hi":8}]}`,
		`{"name":"beta","ranges":[]}`,
		`{"name":"alpha","ranges":[{"lo":7,"hi":8}]}`,
		`{"name":"nosuch","ranges":[{"lo":0,"hi":1}]}`,
		`{"name":"alpha","ranges":[{"lo":"bad"}]}`,
	}
	for i := 0; i < 3; i++ {
		for _, other := range interleaved {
			postJSON(t, ts, "/v1/query", other)
		}
		if _, replay := postJSON(t, ts, "/v1/query", reqA); string(replay) != baseline {
			t.Fatalf("replayed response diverged after interleaved traffic:\n got %q\nwant %q", replay, baseline)
		}
	}
}

// --- concurrent query storm (run with -race) ---

func TestConcurrentQueryStorm(t *testing.T) {
	ts := newTestServer(t, 4.0)
	if resp, body := postJSON(t, ts, "/v1/releases",
		`{"name":"t","strategy":"universal","epsilon":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mint: %d %s", resp.StatusCode, body)
	}
	bodies := []struct {
		payload string
		status  int
	}{
		{`{"name":"t","ranges":[{"lo":0,"hi":8}]}`, http.StatusOK},
		{`{"name":"t","ranges":[{"lo":1,"hi":2},{"lo":3,"hi":7}]}`, http.StatusOK},
		{`{"name":"t","ranges":[]}`, http.StatusOK},
		{`{"name":"missing","ranges":[{"lo":0,"hi":1}]}`, http.StatusNotFound},
		{`{"name":"t","ranges":[{"lo":"x"}]}`, http.StatusBadRequest},
		{`{"name":"t","ranges":[{"lo":5,"hi":2}]}`, http.StatusBadRequest},
	}
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tc := bodies[(w+i)%len(bodies)]
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.payload))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != tc.status {
					errs <- fmt.Errorf("payload %q: status %d, want %d", tc.payload, resp.StatusCode, tc.status)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- encode-failure accounting (satellite: writeJSON no longer silent) ---

func TestWriteJSONEncodeFailureCounted(t *testing.T) {
	var s Server
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("unencodable value got status %d, want 500", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("error reply is not valid JSON: %q", rec.Body.String())
	}
	if got := s.encodeErrors.Load(); got != 1 {
		t.Fatalf("encodeErrors = %d, want 1", got)
	}
}

// --- allocation accounting: pooled path vs the reflection path ---

// reflectionHandleQuery reconstructs the pre-wire.go hot path —
// json.NewDecoder reflection decode, fresh slices, json.NewEncoder
// response — as the comparison baseline for the ≥5x allocation
// acceptance bar.
func reflectionHandleQuery(s *Server, w http.ResponseWriter, r *http.Request, ns string) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if req.Name == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "name is required"})
		return
	}
	answers, entry, err := s.store.Namespace(ns).Query(req.Name, req.Ranges)
	if err != nil {
		s.serveQueryError(w, err)
		return
	}
	if answers == nil {
		answers = []float64{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(queryResponse{
		Namespace: entry.Namespace,
		Name:      entry.Name,
		Version:   entry.Version,
		Strategy:  entry.Strategy.String(),
		Answers:   answers,
	})
}

// nullResponseWriter discards the response; allocation runs must not
// charge the handler for recorder bookkeeping.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 2)
	}
	return w.h
}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// replayBody is an in-place resettable request body.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
func (b *replayBody) Close() error { return nil }

// newQueryBenchServer builds a direct (no network) server with minted
// 1-D and 2-D releases and returns its handler.
func newQueryBenchServer(tb testing.TB) (*Server, http.Handler) {
	tb.Helper()
	counts := make([]float64, 256)
	cells := make([][]float64, 16)
	for i := range counts {
		counts[i] = float64(i % 17)
	}
	for y := range cells {
		cells[y] = counts[y*16 : y*16+16]
	}
	s, err := New(Config{Counts: counts, Cells: cells, Budget: 10, Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	h := s.Handler()
	for _, mint := range []string{
		`{"name":"t","strategy":"universal","epsilon":0.5}`,
		`{"name":"grid","strategy":"universal2d","epsilon":0.5}`,
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/releases", strings.NewReader(mint))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			tb.Fatalf("mint: %d %s", rec.Code, rec.Body.String())
		}
	}
	return s, h
}

func queryHTTPRequest(path, payload string) (*http.Request, *replayBody) {
	body := &replayBody{data: []byte(payload)}
	req := httptest.NewRequest(http.MethodPost, path, nil)
	req.Body = body
	req.ContentLength = int64(len(body.data))
	return req, body
}

const benchQueryBody = `{"name":"t","ranges":[{"lo":0,"hi":256},{"lo":17,"hi":42},{"lo":3,"hi":200},{"lo":128,"hi":129}]}`
const benchQuery2DBody = `{"name":"grid","rects":[{"x0":0,"y0":0,"x1":16,"y1":16},{"x0":2,"y0":3,"x1":9,"y1":11}]}`

// TestServerQueryAllocs is the tentpole's acceptance gate: the pooled
// hot path stays within ~1 amortized allocation per request (plus the
// per-request header write every path pays) and beats the reflection
// path by at least 5x.
func TestServerQueryAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is meaningless under -short's first-run pools")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates per request; counts are unrepresentative")
	}
	s, h := newQueryBenchServer(t)
	req, body := queryHTTPRequest("/v1/query", benchQueryBody)
	w := &nullResponseWriter{}
	// Warm the pools and the name memo.
	for i := 0; i < 8; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
	pooled := testing.AllocsPerRun(400, func() {
		body.off = 0
		h.ServeHTTP(w, req)
	})

	reflReq, reflBody := queryHTTPRequest("/v1/query", benchQueryBody)
	reflW := &nullResponseWriter{}
	refl := testing.AllocsPerRun(400, func() {
		reflBody.off = 0
		reflectionHandleQuery(s, reflW, reflReq, dphist.DefaultNamespace)
	})

	t.Logf("allocs/request: pooled=%.1f reflection=%.1f", pooled, refl)
	// Budget: the Content-Type header set is ~1 alloc on every path;
	// everything else is pooled. 2.5 leaves room for rare pool misses.
	if pooled > 2.5 {
		t.Errorf("pooled query path allocates %.1f/request, want <= 2.5", pooled)
	}
	if refl < 5*pooled {
		t.Errorf("reflection path allocates %.1f/request vs pooled %.1f: less than the 5x the rework claims", refl, pooled)
	}
}

func BenchmarkServerQueryHTTP(b *testing.B) {
	_, h := newQueryBenchServer(b)
	req, body := queryHTTPRequest("/v1/query", benchQueryBody)
	w := &nullResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
}

func BenchmarkServerQuery2DHTTP(b *testing.B) {
	_, h := newQueryBenchServer(b)
	req, body := queryHTTPRequest("/v1/query2d", benchQuery2DBody)
	w := &nullResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
}

// BenchmarkServerQueryHTTPReflection is the pre-rework wire path, kept
// runnable so the win stays measurable in CI output.
func BenchmarkServerQueryHTTPReflection(b *testing.B) {
	s, _ := newQueryBenchServer(b)
	req, body := queryHTTPRequest("/v1/query", benchQueryBody)
	w := &nullResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		reflectionHandleQuery(s, w, req, dphist.DefaultNamespace)
	}
}
