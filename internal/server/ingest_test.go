package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/ingest"
)

// newIngestServer wires a server whose store is shared with a live
// ingest pipeline, epoch interval long enough that only explicit Flush
// calls mint.
func newIngestServer(t *testing.T, mutate func(*ingest.Config)) (*httptest.Server, *ingest.Ingester, *dphist.Store) {
	t.Helper()
	store := dphist.NewStore(dphist.WithBudget(100), dphist.WithQueryCache(32))
	mech, err := dphist.New(dphist.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ingest.Config{
		Store:     store,
		Mechanism: mech,
		Domain:    8,
		Epoch:     time.Hour,
		Epsilon:   0.5,
		Shards:    2,
		Seed:      3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	t.Cleanup(func() { in.Close() })
	s, err := New(Config{
		Counts:   []float64{1, 1, 1, 1, 1, 1, 1, 1},
		Store:    store,
		Seed:     7,
		Ingester: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, in, store
}

// TestIngestEndToEnd is the wire-level demo: events POSTed to
// /v1/ingest become a queryable epoch release, the window release
// follows, and /v1/stats reports the pipeline counters.
func TestIngestEndToEnd(t *testing.T) {
	ts, in, _ := newIngestServer(t, func(c *ingest.Config) { c.Window = 2 })

	resp, body := postJSON(t, ts, "/v1/ingest",
		`{"events":[{"stream":"clicks","bucket":0,"weight":10},
		            {"stream":"clicks","bucket":3},
		            {"stream":"clicks","bucket":99},
		            {"stream":"clicks","bucket":7,"weight":5}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 3 || ir.Dropped != 1 {
		t.Fatalf("accepted %d dropped %d, want 3 and 1", ir.Accepted, ir.Dropped)
	}
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}

	// The minted epoch answers /v1/query like any stored release.
	resp, body = postJSON(t, ts, "/v1/query",
		`{"name":"`+ingest.EpochName("clicks", 1)+`","ranges":[{"lo":0,"hi":8}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != 1 {
		t.Fatalf("answers %v", qr.Answers)
	}
	// Weight 10 + 1 + 5 = 16; epsilon 0.5 noise stays well inside ±40.
	if qr.Answers[0] < -24 || qr.Answers[0] > 56 {
		t.Fatalf("epoch total %v, want near 16", qr.Answers[0])
	}
	for _, name := range []string{ingest.LatestName("clicks"), ingest.WindowName("clicks")} {
		resp, body = postJSON(t, ts, "/v1/query", `{"name":"`+name+`","ranges":[{"lo":0,"hi":8}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s status %d: %s", name, resp.StatusCode, body)
		}
	}

	resp, body = getStats(t, ts)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		Ingest struct {
			Enabled    bool  `json:"enabled"`
			Events     int64 `json:"events"`
			Dropped    int64 `json:"dropped"`
			EpochMints int64 `json:"epoch_mints"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Ingest.Enabled || stats.Ingest.Events != 3 || stats.Ingest.Dropped != 1 || stats.Ingest.EpochMints != 1 {
		t.Fatalf("stats ingest block %+v", stats.Ingest)
	}
}

func getStats(t *testing.T, ts *httptest.Server) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []byte
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, out
}

// TestIngestNamespaced: the /v1/ns/{ns}/ingest twin writes into that
// namespace's keyspace, invisible to the default namespace.
func TestIngestNamespaced(t *testing.T) {
	ts, in, store := newIngestServer(t, nil)
	resp, body := postJSON(t, ts, "/v1/ns/acme/ingest",
		`{"events":[{"stream":"clicks","bucket":1,"weight":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("namespaced ingest status %d: %s", resp.StatusCode, body)
	}
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := store.Namespace("acme").Get(ingest.EpochName("clicks", 1)); !ok {
		t.Fatal("namespaced epoch missing")
	}
	if _, _, ok := store.Namespace(dphist.DefaultNamespace).Get(ingest.EpochName("clicks", 1)); ok {
		t.Fatal("namespaced ingest leaked into default namespace")
	}
	resp, _ = postJSON(t, ts, "/v1/ns/../ingest", `{"events":[{"stream":"x","bucket":0}]}`)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("dot-segment namespace accepted")
	}
}

func TestIngestLiveEndpoint(t *testing.T) {
	ts, in, _ := newIngestServer(t, func(c *ingest.Config) { c.LiveEpsilon = 50 })
	if _, body := postJSON(t, ts, "/v1/ingest",
		`{"events":[{"stream":"clicks","bucket":2,"weight":30},{"stream":"clicks","bucket":5,"weight":7}]}`); len(body) == 0 {
		t.Fatal("empty ingest reply")
	}
	// Serialize behind the batch so the live counters exist.
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts, "/v1/ingest/live", `{"stream":"clicks","buckets":[2,5,0]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live status %d: %s", resp.StatusCode, body)
	}
	var lr ingestLiveResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	want := []float64{30, 7, 0}
	for i := range want {
		if lr.Counts[i] < want[i]-2 || lr.Counts[i] > want[i]+2 {
			t.Fatalf("live counts %v, want near %v", lr.Counts, want)
		}
	}
	// Malformed requests.
	if resp, _ := postJSON(t, ts, "/v1/ingest/live", `{"buckets":[0]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing stream: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/ingest/live", `{"stream":"clicks","buckets":[99]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-domain bucket: status %d", resp.StatusCode)
	}
}

func TestIngestLiveDisabled(t *testing.T) {
	ts, _, _ := newIngestServer(t, nil)
	resp, _ := postJSON(t, ts, "/v1/ingest/live", `{"stream":"clicks","buckets":[0]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled live surface: status %d, want 404", resp.StatusCode)
	}
}

// TestIngestNotConfigured: servers without a pipeline refuse the ingest
// routes but keep serving everything else.
func TestIngestNotConfigured(t *testing.T) {
	ts := newTestServer(t, 2.0)
	for _, path := range []string{"/v1/ingest", "/v1/ingest/live", "/v1/ns/acme/ingest"} {
		resp, _ := postJSON(t, ts, path, `{"events":[{"stream":"x","bucket":0}]}`)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on query-only server: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, body := getStats(t, ts)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("stats broken on query-only server")
	}
	var stats struct {
		Ingest struct {
			Enabled bool `json:"enabled"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest.Enabled {
		t.Fatal("query-only server reports ingest enabled")
	}
}

func TestIngestValidation(t *testing.T) {
	ts, _, _ := newIngestServer(t, nil)
	for name, body := range map[string]string{
		"empty events": `{"events":[]}`,
		"no body":      `{}`,
		"malformed":    `{"events":`,
	} {
		resp, _ := postJSON(t, ts, "/v1/ingest", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
