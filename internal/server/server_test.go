package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"

	"github.com/dphist/dphist"
)

func newTestServer(t *testing.T, budget float64) *httptest.Server {
	t.Helper()
	s, err := New(Config{
		Counts: []float64{2, 0, 10, 2, 5, 5, 5, 5},
		Budget: budget,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postRelease(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/release", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Counts: nil, Budget: 1}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := New(Config{Counts: []float64{1}, Budget: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(Config{Counts: []float64{1}, Budget: 1, Branching: 1}); err == nil {
		t.Error("branching 1 accepted")
	}
	if _, err := New(Config{Counts: []float64{1, 2}, Budget: 1, Hierarchy: dphist.Grades()}); err == nil {
		t.Error("hierarchy with mismatched leaf count accepted")
	}
}

func TestBudgetEndpoint(t *testing.T) {
	ts := newTestServer(t, 2.0)
	resp, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b budgetResponse
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Total != 2.0 || b.Spent != 0 || b.Remaining != 2.0 {
		t.Fatalf("budget = %+v", b)
	}
}

// The acceptance test for the strategy registry: every library strategy
// is served by the one generic handler, each response decodes through
// the uniform Release interface, and every charge lands on the public
// Accountant supplied by the embedding caller.
func TestEveryStrategyThroughGenericHandler(t *testing.T) {
	acct := dphist.NewAccountant(100)
	grades := dphist.Grades()
	s, err := New(Config{
		Counts:     []float64{2, 0, 10, 2, 5}, // five counts = five Grades leaves
		Cells:      [][]float64{{2, 0}, {10, 2}},
		Accountant: acct,
		Seed:       7,
		Hierarchy:  grades,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const eps = 0.25
	want := 0.0
	for _, strategy := range dphist.Strategies() {
		t.Run(strategy.String(), func(t *testing.T) {
			resp, body := postRelease(t, ts,
				`{"strategy":"`+strategy.String()+`","epsilon":0.25}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var rr releaseResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Fatal(err)
			}
			if rr.Strategy != strategy.String() || rr.Version != dphist.WireVersion {
				t.Fatalf("response meta wrong: %+v", rr)
			}
			rel, err := dphist.DecodeRelease(rr.Release)
			if err != nil {
				t.Fatalf("release payload does not decode: %v", err)
			}
			if rel.Strategy() != strategy {
				t.Fatalf("decoded strategy %v", rel.Strategy())
			}
			if rel.Epsilon() != eps {
				t.Fatalf("decoded epsilon %v", rel.Epsilon())
			}
			if len(rel.Counts()) == 0 {
				t.Fatal("decoded release has no counts")
			}
			if _, err := rel.Range(0, len(rel.Counts())); err != nil {
				t.Fatalf("decoded release cannot answer ranges: %v", err)
			}
			// The charge landed on the caller's accountant, labelled by
			// strategy.
			want += eps
			if got := acct.Spent(); got != want {
				t.Fatalf("accountant spent %v, want %v", got, want)
			}
			log := acct.Log()
			if last := log[len(log)-1]; last.Label != "release:"+strategy.String() || last.Epsilon != eps {
				t.Fatalf("last charge = %+v", last)
			}
		})
	}
	if rem := acct.Remaining(); rem != 100-want {
		t.Fatalf("remaining %v after all strategies", rem)
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	ts := newTestServer(t, 1.0)
	resp, err := http.Get(ts.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr strategiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	// No hierarchy and no 2-D dataset configured: those two strategies
	// are withheld, the rest are servable, plus the "auto" sentinel.
	if len(sr.Strategies) != len(dphist.Strategies())-2+1 {
		t.Fatalf("strategies = %v", sr.Strategies)
	}
	if !slices.Contains(sr.Strategies, "auto") {
		t.Fatalf("auto not advertised: %v", sr.Strategies)
	}
	for _, name := range sr.Strategies {
		if name == "hierarchy" {
			t.Fatal("unconfigured hierarchy advertised")
		}
		if name == "universal2d" {
			t.Fatal("unconfigured universal2d advertised")
		}
	}
}

func TestHierarchyRefusedWithoutConfig(t *testing.T) {
	ts := newTestServer(t, 1.0)
	resp, body := postRelease(t, ts, `{"strategy":"hierarchy","epsilon":0.1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestUniversalReleaseOverHTTP(t *testing.T) {
	ts := newTestServer(t, 2.0)
	resp, body := postRelease(t, ts, `{"strategy":"universal","epsilon":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr releaseResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Strategy != "universal" || rr.Domain != 8 {
		t.Fatalf("response meta wrong: %+v", rr)
	}
	if rr.BudgetRemaining != 1.5 {
		t.Fatalf("budget remaining %v, want 1.5", rr.BudgetRemaining)
	}
	// The embedded release decodes into a queryable object client-side.
	var rel dphist.UniversalRelease
	if err := json.Unmarshal(rr.Release, &rel); err != nil {
		t.Fatal(err)
	}
	if rel.Domain() != 8 {
		t.Fatalf("decoded release domain %d", rel.Domain())
	}
	if _, err := rel.Range(0, 8); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyTaskAliasStillServed(t *testing.T) {
	ts := newTestServer(t, 2.0)
	resp, body := postRelease(t, ts, `{"task":"unattributed","epsilon":0.25}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unattributed status %d: %s", resp.StatusCode, body)
	}
	var rr releaseResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	var unat dphist.UnattributedRelease
	if err := json.Unmarshal(rr.Release, &unat); err != nil {
		t.Fatal(err)
	}
	if len(unat.Counts()) != 8 {
		t.Fatal("unattributed release wrong length")
	}
}

func TestBudgetEnforcement(t *testing.T) {
	ts := newTestServer(t, 1.0)
	if resp, _ := postRelease(t, ts, `{"strategy":"laplace","epsilon":0.8}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("first release refused: %d", resp.StatusCode)
	}
	resp, body := postRelease(t, ts, `{"strategy":"laplace","epsilon":0.5}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overdraw status %d: %s", resp.StatusCode, body)
	}
	// The failed request must not have charged the budget.
	if resp, _ := postRelease(t, ts, `{"strategy":"laplace","epsilon":0.2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("within-budget release refused after failed overdraw: %d", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, 1.0)
	cases := []string{
		`{"strategy":"universal","epsilon":0}`,
		`{"strategy":"universal","epsilon":-1}`,
		`{"strategy":"nope","epsilon":0.1}`,
		`not json`,
	}
	for _, c := range cases {
		resp, _ := postRelease(t, ts, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %q: status %d, want 400", c, resp.StatusCode)
		}
	}
	// Bad requests cost nothing.
	resp, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b budgetResponse
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Spent != 0 {
		t.Fatalf("bad requests charged the budget: %+v", b)
	}
}

func TestPerRequestCap(t *testing.T) {
	s, err := New(Config{
		Counts:               []float64{1, 2},
		Budget:               10,
		MaxEpsilonPerRequest: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/release", "application/json",
		bytes.NewBufferString(`{"strategy":"laplace","epsilon":1.0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("capped request status %d", resp.StatusCode)
	}
}

func TestDefaultStrategyIsUniversal(t *testing.T) {
	ts := newTestServer(t, 1.0)
	resp, body := postRelease(t, ts, `{"epsilon":0.1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr releaseResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Strategy != "universal" {
		t.Fatalf("default strategy %q", rr.Strategy)
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestStoreReleaseAndQueryRoundTrip(t *testing.T) {
	ts := newTestServer(t, 2.0)
	resp, body := postJSON(t, ts, "/v1/releases",
		`{"name":"traffic","strategy":"universal","epsilon":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store status %d: %s", resp.StatusCode, body)
	}
	var sr storeReleaseResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Name != "traffic" || sr.Version != 1 || sr.Strategy != "universal" ||
		sr.Epsilon != 0.5 || sr.Domain != 8 || sr.BudgetRemaining != 1.5 {
		t.Fatalf("store response meta wrong: %+v", sr)
	}
	// The embedded payload still decodes client-side.
	if _, err := dphist.DecodeRelease(sr.Release); err != nil {
		t.Fatalf("stored release payload does not decode: %v", err)
	}

	// The stored release is listed.
	resp, err := http.Get(ts.URL + "/v1/releases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list listReleasesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Releases) != 1 || list.Releases[0].Name != "traffic" || list.Releases[0].Version != 1 {
		t.Fatalf("list = %+v", list)
	}

	// And queryable by name, empty ranges included.
	resp, body = postJSON(t, ts, "/v1/query",
		`{"name":"traffic","ranges":[{"lo":0,"hi":8},{"lo":3,"hi":3},{"lo":2,"hi":5}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Name != "traffic" || qr.Version != 1 || qr.Strategy != "universal" || len(qr.Answers) != 3 {
		t.Fatalf("query response = %+v", qr)
	}
	if qr.Answers[1] != 0 {
		t.Fatalf("empty range answered %v", qr.Answers[1])
	}
	// Answers match the decoded release queried offline.
	rel, err := dphist.DecodeRelease(sr.Release)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dphist.QueryBatch(rel, []dphist.RangeSpec{{Lo: 0, Hi: 8}, {Lo: 3, Hi: 3}, {Lo: 2, Hi: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if qr.Answers[i] != want[i] {
			t.Fatalf("answers = %v, offline = %v", qr.Answers, want)
		}
	}
}

// The acceptance workload: a 1,000-range batch against one stored
// universal release, answered in one round trip.
func TestQueryThousandRangeBatch(t *testing.T) {
	ts := newTestServer(t, 2.0)
	if resp, body := postJSON(t, ts, "/v1/releases",
		`{"name":"traffic","epsilon":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("store status %d: %s", resp.StatusCode, body)
	}
	specs := make([]dphist.RangeSpec, 1000)
	for i := range specs {
		lo := i % 8
		specs[i] = dphist.RangeSpec{Lo: lo, Hi: lo + (i % (9 - lo))}
	}
	payload, err := json.Marshal(struct {
		Name   string             `json:"name"`
		Ranges []dphist.RangeSpec `json:"ranges"`
	}{Name: "traffic", Ranges: specs})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts, "/v1/query", string(payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != 1000 {
		t.Fatalf("%d answers for 1000 ranges", len(qr.Answers))
	}
}

func TestQueryErrors(t *testing.T) {
	ts := newTestServer(t, 2.0)
	// Unknown name is 404.
	resp, body := postJSON(t, ts, "/v1/query", `{"name":"absent","ranges":[{"lo":0,"hi":1}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown name status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts, "/v1/query", `{"ranges":[{"lo":0,"hi":1}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing name status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/releases", `{"strategy":"laplace","epsilon":0.1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing store name status %d", resp.StatusCode)
	}
	// Out-of-domain ranges against a live release are 400.
	if resp, body := postJSON(t, ts, "/v1/releases", `{"name":"h","epsilon":0.1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("store status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts, "/v1/query", `{"name":"h","ranges":[{"lo":0,"hi":99}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad range status %d", resp.StatusCode)
	}
	// Failed stores charge nothing beyond the successful one.
	resp2, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var b budgetResponse
	if err := json.NewDecoder(resp2.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Spent != 0.1 {
		t.Fatalf("spent %v, want 0.1", b.Spent)
	}
}

func TestStoreReleaseVersioningOverHTTP(t *testing.T) {
	ts := newTestServer(t, 2.0)
	for want := 1; want <= 2; want++ {
		resp, body := postJSON(t, ts, "/v1/releases", `{"name":"h","strategy":"laplace","epsilon":0.1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("store status %d: %s", resp.StatusCode, body)
		}
		var sr storeReleaseResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Version != want {
			t.Fatalf("version = %d, want %d", sr.Version, want)
		}
	}
}

func TestConcurrentReleases(t *testing.T) {
	ts := newTestServer(t, 100)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/release", "application/json",
				bytes.NewBufferString(`{"strategy":"laplace","epsilon":1}`))
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// All 32 charges accounted for.
	resp, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b budgetResponse
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Spent != 32 {
		t.Fatalf("spent %v, want 32", b.Spent)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, 1.0)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// Namespaced routes scope both the release keyspace and the budget:
// tenant-a's mint is invisible to tenant-b, and each tenant's spend
// lands on its own accountant.
func TestNamespaceRoutes(t *testing.T) {
	s, err := New(Config{
		Counts: []float64{2, 0, 10, 2, 5, 5, 5, 5},
		Budget: 2.0,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(t *testing.T, path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := post(t, "/v1/ns/tenant-a/releases", `{"name":"traffic","strategy":"universal","epsilon":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-a mint: %d %s", resp.StatusCode, body)
	}
	var sr storeReleaseResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Namespace != "tenant-a" || sr.Version != 1 {
		t.Fatalf("stored entry = %+v", sr.storedReleaseInfo)
	}

	// tenant-b cannot see tenant-a's release...
	resp, _ = post(t, "/v1/ns/tenant-b/query", `{"name":"traffic","ranges":[{"lo":0,"hi":8}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-namespace query status %d", resp.StatusCode)
	}
	// ...but tenant-a can.
	resp, body = post(t, "/v1/ns/tenant-a/query", `{"name":"traffic","ranges":[{"lo":0,"hi":8}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-a query: %d %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Namespace != "tenant-a" || len(qr.Answers) != 1 {
		t.Fatalf("query response = %+v", qr)
	}

	// Budgets are independent: a spent 0.5 of 2, b spent nothing, and
	// the default namespace is untouched by both.
	for path, wantSpent := range map[string]float64{
		"/v1/ns/tenant-a/budget": 0.5,
		"/v1/ns/tenant-b/budget": 0,
		"/v1/budget":             0,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var b budgetResponse
		if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if b.Total != 2.0 || b.Spent != wantSpent {
			t.Fatalf("%s = %+v, want spent %v", path, b, wantSpent)
		}
	}

	// Listing is scoped too.
	resp, err = http.Get(ts.URL + "/v1/ns/tenant-b/releases")
	if err != nil {
		t.Fatal(err)
	}
	var lr listReleasesResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lr.Releases) != 0 {
		t.Fatalf("tenant-b sees %d releases", len(lr.Releases))
	}

	// Invalid namespace names are refused before touching any state.
	resp, _ = post(t, "/v1/ns/bad%20name/query", `{"name":"x","ranges":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid namespace status %d", resp.StatusCode)
	}

	// Probing an absent namespace's budget answers the untouched default
	// without materializing the namespace — reads must not grow state.
	resp, err = http.Get(ts.URL + "/v1/ns/probe-only/budget")
	if err != nil {
		t.Fatal(err)
	}
	var pb budgetResponse
	if err := json.NewDecoder(resp.Body).Decode(&pb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pb.Total != 2.0 || pb.Spent != 0 {
		t.Fatalf("probe budget = %+v", pb)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	for _, ns := range st.Namespaces {
		if ns.Name == "probe-only" {
			t.Fatal("budget probe materialized the namespace")
		}
	}
}

// /v1/stats reports per-namespace sizes and budgets plus the request
// counters maintained by the middleware.
func TestStatsEndpoint(t *testing.T) {
	s, err := New(Config{
		Counts: []float64{2, 0, 10, 2, 5, 5, 5, 5},
		Budget: 2.0,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Post(ts.URL+"/v1/ns/tenant-a/releases", "application/json",
		bytes.NewBufferString(`{"name":"r","strategy":"laplace","epsilon":0.25}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mint status %d", resp.StatusCode)
		}
	}
	// One guaranteed error for the error counter.
	if resp, err := http.Post(ts.URL+"/v1/release", "application/json",
		bytes.NewBufferString(`{"epsilon":-1}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Total < 2 || st.Requests.Errors < 1 || st.Requests.ReleasesMinted != 1 {
		t.Fatalf("request counters = %+v", st.Requests)
	}
	if st.Durable {
		t.Fatal("in-memory server reports durable")
	}
	byName := map[string]namespaceStats{}
	for _, ns := range st.Namespaces {
		byName[ns.Name] = ns
	}
	a, ok := byName["tenant-a"]
	if !ok || a.Releases != 1 || a.BudgetSpent != 0.25 || a.BudgetTotal != 2.0 {
		t.Fatalf("tenant-a stats = %+v (present %v)", a, ok)
	}
	d, ok := byName[dphist.DefaultNamespace]
	if !ok || d.Releases != 0 || d.BudgetSpent != 0 {
		t.Fatalf("default stats = %+v (present %v)", d, ok)
	}
}

// /v1/stats reports the answer cache's hit/miss counters when
// Config.CacheCapacity enables it, and an identical repeated batch is
// served from memory.
func TestStatsCacheSection(t *testing.T) {
	s, err := New(Config{
		Counts:        []float64{2, 0, 10, 2, 5, 5, 5, 5},
		Budget:        2.0,
		Seed:          9,
		CacheCapacity: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Post(ts.URL+"/v1/releases", "application/json",
		bytes.NewBufferString(`{"name":"r","strategy":"universal","epsilon":0.5}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mint status %d", resp.StatusCode)
		}
	}
	var answers [2][]float64
	for i := range answers {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			bytes.NewBufferString(`{"name":"r","ranges":[{"lo":0,"hi":8},{"lo":2,"hi":5}]}`))
		if err != nil {
			t.Fatal(err)
		}
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		answers[i] = qr.Answers
	}
	if len(answers[0]) != 2 || len(answers[1]) != 2 ||
		answers[0][0] != answers[1][0] || answers[0][1] != answers[1][1] {
		t.Fatalf("cached batch diverged: %v vs %v", answers[0], answers[1])
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	c := st.Cache
	if !c.Enabled || c.Capacity != 16 || c.Hits != 1 || c.Misses != 1 || c.Entries != 1 {
		t.Fatalf("cache stats = %+v", c)
	}
	if c.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", c.HitRatio)
	}

	// Without CacheCapacity the section reports disabled.
	off, err := New(Config{Counts: []float64{1, 2}, Budget: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	respOff, err := http.Get(tsOff.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer respOff.Body.Close()
	var stOff statsResponse
	if err := json.NewDecoder(respOff.Body).Decode(&stOff); err != nil {
		t.Fatal(err)
	}
	if stOff.Cache.Enabled || stOff.Cache.Capacity != 0 {
		t.Fatalf("disabled cache stats = %+v", stOff.Cache)
	}
}

// The 2-D serving surface end to end: mint a universal2d release over
// HTTP, answer rectangle batches through /v1/query2d (and its namespace
// twin), and map the failure modes onto the right status codes.
func TestQuery2DOverHTTP(t *testing.T) {
	cells := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	s, err := New(Config{
		Counts: []float64{2, 0, 10, 2},
		Cells:  cells,
		Budget: 5,
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(t *testing.T, path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	for _, prefix := range []string{"/v1", NamespacePath("geo.tenant")} {
		resp, body := post(t, prefix+"/releases", `{"name":"grid","strategy":"universal2d","epsilon":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s mint: %d %s", prefix, resp.StatusCode, body)
		}
		var sr storeReleaseResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Strategy != "universal2d" || sr.Domain != 12 {
			t.Fatalf("%s stored entry = %+v", prefix, sr.storedReleaseInfo)
		}
		// The returned payload decodes client-side into the 2-D type.
		rel, err := dphist.DecodeRelease(sr.Release)
		if err != nil {
			t.Fatal(err)
		}
		rq, ok := rel.(*dphist.Universal2DRelease)
		if !ok {
			t.Fatalf("%s decoded %T", prefix, rel)
		}
		if rq.Width() != 4 || rq.Height() != 3 {
			t.Fatalf("%s decoded grid %dx%d", prefix, rq.Width(), rq.Height())
		}

		resp, body = post(t, prefix+"/query2d",
			`{"name":"grid","rects":[{"x0":0,"y0":0,"x1":4,"y1":3},{"x0":1,"y0":1,"x1":3,"y1":2},{"x0":2,"y0":2,"x1":2,"y1":2}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s query2d: %d %s", prefix, resp.StatusCode, body)
		}
		var qr query2DResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Strategy != "universal2d" || len(qr.Answers) != 3 {
			t.Fatalf("%s query2d response = %+v", prefix, qr)
		}
		// Answers match querying the decoded release offline.
		want, err := dphist.QueryRects(rel, []dphist.RectSpec{
			{X0: 0, Y0: 0, X1: 4, Y1: 3}, {X0: 1, Y0: 1, X1: 3, Y1: 2}, {X0: 2, Y0: 2, X1: 2, Y1: 2}})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if qr.Answers[i] != want[i] {
				t.Fatalf("%s answer %d = %v, offline = %v", prefix, i, qr.Answers[i], want[i])
			}
		}
		if qr.Answers[2] != 0 {
			t.Fatalf("%s empty rect answered %v", prefix, qr.Answers[2])
		}
	}

	// Failure modes: unknown name is 404; a 1-D release and a malformed
	// rectangle are the analyst's 400.
	resp, _ := post(t, "/v1/query2d", `{"name":"missing","rects":[{"x1":1,"y1":1}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing name status %d", resp.StatusCode)
	}
	if resp, body := post(t, "/v1/releases", `{"name":"flat","strategy":"laplace","epsilon":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("flat mint: %d %s", resp.StatusCode, body)
	}
	resp, body := post(t, "/v1/query2d", `{"name":"flat","rects":[{"x1":1,"y1":1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1-D release query2d status %d: %s", resp.StatusCode, body)
	}
	resp, _ = post(t, "/v1/query2d", `{"name":"grid","rects":[{"x0":3,"y0":0,"x1":1,"y1":1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted rect status %d", resp.StatusCode)
	}
	resp, _ = post(t, "/v1/query2d", `{"rects":[{"x1":1,"y1":1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless query2d status %d", resp.StatusCode)
	}
}

// Dot-segment namespaces are unroutable (clients and proxies normalize
// them away); the scoped handler must refuse any that sneak through as
// escaped segments rather than treating ".." as a tenant.
func TestDotSegmentNamespaceRejected(t *testing.T) {
	ts := newTestServer(t, 1.0)
	for _, ns := range []string{"%2e", "%2e%2e"} {
		resp, err := http.Get(ts.URL + "/v1/ns/" + ns + "/budget")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("namespace %q served with status 200", ns)
		}
	}
	if got := NamespacePath("a b/c"); got != "/v1/ns/a%20b%2Fc" {
		t.Fatalf("NamespacePath escaped to %q", got)
	}
}

// The 2-D acceptance path end to end: a universal2d release minted over
// HTTP into a durable store keeps answering identical rectangle batches
// after the whole stack restarts from disk.
func TestServer2DDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cells := [][]float64{{3, 1, 4, 1}, {5, 9, 2, 6}, {5, 3, 5, 8}, {9, 7, 9, 3}}
	open := func(t *testing.T) (*Server, *dphist.Store) {
		t.Helper()
		store, err := dphist.OpenStore(dir, dphist.WithBudget(2.0))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Counts: []float64{1, 2}, Cells: cells, Seed: 13, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		return s, store
	}
	const batch = `{"name":"grid","rects":[{"x0":0,"y0":0,"x1":4,"y1":4},{"x0":1,"y0":2,"x1":3,"y1":4},{"x0":0,"y0":0,"x1":0,"y1":0}]}`
	postJSON := func(t *testing.T, ts *httptest.Server, path, body string, want int) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes()
	}

	s1, store1 := open(t)
	ts1 := httptest.NewServer(s1.Handler())
	postJSON(t, ts1, "/v1/ns/geo/releases", `{"name":"grid","strategy":"universal2d","epsilon":0.5}`, http.StatusOK)
	var before query2DResponse
	if err := json.Unmarshal(postJSON(t, ts1, "/v1/ns/geo/query2d", batch, http.StatusOK), &before); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	// Kill without Close: the WAL alone carries the release.
	_ = store1

	s2, store2 := open(t)
	defer store2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var after query2DResponse
	if err := json.Unmarshal(postJSON(t, ts2, "/v1/ns/geo/query2d", batch, http.StatusOK), &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Answers) != len(before.Answers) {
		t.Fatalf("answer count changed: %d vs %d", len(after.Answers), len(before.Answers))
	}
	for i := range before.Answers {
		if after.Answers[i] != before.Answers[i] {
			t.Fatalf("answer %d drifted across restart: %v vs %v", i, after.Answers[i], before.Answers[i])
		}
	}
	if after.Version != 1 || after.Strategy != "universal2d" {
		t.Fatalf("recovered entry = %+v", after)
	}
}

// A server handed a durable store keeps tenants' releases and ledgers
// across a restart of the whole HTTP stack.
func TestServerDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	counts := []float64{2, 0, 10, 2, 5, 5, 5, 5}
	open := func(t *testing.T) (*Server, *dphist.Store) {
		t.Helper()
		store, err := dphist.OpenStore(dir, dphist.WithBudget(2.0))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Counts: counts, Seed: 7, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		return s, store
	}
	s1, store1 := open(t)
	ts1 := httptest.NewServer(s1.Handler())
	resp, err := http.Post(ts1.URL+"/v1/ns/tenant-a/releases", "application/json",
		bytes.NewBufferString(`{"name":"traffic","strategy":"universal","epsilon":0.75}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mint status %d", resp.StatusCode)
	}
	ts1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, store2 := open(t)
	defer store2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/v1/ns/tenant-a/query", "application/json",
		bytes.NewBufferString(`{"name":"traffic","ranges":[{"lo":0,"hi":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart query status %d", resp.StatusCode)
	}
	budgetResp, err := http.Get(ts2.URL + "/v1/ns/tenant-a/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer budgetResp.Body.Close()
	var b budgetResponse
	if err := json.NewDecoder(budgetResp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Spent != 0.75 || b.Total != 2.0 {
		t.Fatalf("post-restart budget = %+v", b)
	}
}
