package ingest

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/dphist/dphist"
)

const testEps = 0.5

// newTestIngester wires an ingester over the given store with a long
// epoch interval so only explicit Flush calls mint, which keeps tests
// deterministic.
func newTestIngester(t *testing.T, store *dphist.Store, mutate func(*Config)) *Ingester {
	t.Helper()
	mech, err := dphist.New(dphist.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:     store,
		Mechanism: mech,
		Domain:    8,
		Epoch:     time.Hour,
		Epsilon:   testEps,
		Shards:    3,
		Seed:      7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	t.Cleanup(func() { in.Close() })
	return in
}

func feed(t *testing.T, in *Ingester, ns, strm string, weights []float64) {
	t.Helper()
	var events []Event
	for b, w := range weights {
		if w != 0 {
			events = append(events, Event{Stream: strm, Bucket: b, Weight: w})
		}
	}
	n, err := in.Ingest(ns, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("accepted %d of %d events", n, len(events))
	}
}

func TestNewValidation(t *testing.T) {
	store := dphist.NewStore()
	mech, _ := dphist.New()
	base := Config{Store: store, Mechanism: mech, Domain: 4, Epoch: time.Second, Epsilon: 1}
	for name, mutate := range map[string]func(*Config){
		"nil store":        func(c *Config) { c.Store = nil },
		"nil mechanism":    func(c *Config) { c.Mechanism = nil },
		"zero domain":      func(c *Config) { c.Domain = 0 },
		"zero epoch":       func(c *Config) { c.Epoch = 0 },
		"zero epsilon":     func(c *Config) { c.Epsilon = 0 },
		"negative epsilon": func(c *Config) { c.Epsilon = -1 },
		"invalid strategy": func(c *Config) { c.Strategy = dphist.Strategy(99) },
		"hierarchy":        func(c *Config) { c.Strategy = dphist.StrategyHierarchy },
		"2d":               func(c *Config) { c.Strategy = dphist.StrategyUniversal2D },
		"huge shard count": func(c *Config) { c.Shards = 4096 },
		"negative shards":  func(c *Config) { c.Shards = -1 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestIngestDropsBadEvents(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, nil)
	n, err := in.Ingest("", []Event{
		{Stream: "clicks", Bucket: -1},                     // below domain
		{Stream: "clicks", Bucket: 8},                      // past domain
		{Stream: "clicks", Bucket: 0, Weight: -1},          // negative
		{Stream: "clicks", Bucket: 0, Weight: math.NaN()},  // NaN
		{Stream: "clicks", Bucket: 0, Weight: math.Inf(1)}, // infinite
		{Stream: "..", Bucket: 0},                          // bad stream name
		{Stream: "clicks", Bucket: 3, Weight: 2},           // good
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("accepted %d events, want 1", n)
	}
	st := in.Stats()
	if st.Dropped != 6 || st.Events != 1 {
		t.Fatalf("stats dropped %d events %d, want 6 and 1", st.Dropped, st.Events)
	}
}

// TestEpochLifecycle walks the versioned-name contract: sequential
// epoch names, a "@latest" alias tracking the newest mint, version
// counters counting mints, and no mint for an empty interval.
func TestEpochLifecycle(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, nil)
	ns := store.Namespace(dphist.DefaultNamespace)

	feed(t, in, "", "clicks", []float64{5, 0, 3, 0, 0, 0, 0, 2})
	res, err := in.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams != 1 || res.Minted != 1 || res.Failed != 0 {
		t.Fatalf("flush 1: %+v", res)
	}
	feed(t, in, "", "clicks", []float64{0, 1, 0, 0, 0, 0, 0, 0})
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{EpochName("clicks", 1), EpochName("clicks", 2), LatestName("clicks")} {
		if _, _, ok := ns.Get(name); !ok {
			t.Fatalf("%s missing after two mints", name)
		}
	}
	if _, _, ok := ns.Get(EpochName("clicks", 3)); ok {
		t.Fatal("phantom third epoch")
	}
	if v := ns.Version(LatestName("clicks")); v != 2 {
		t.Fatalf("latest version %d, want 2", v)
	}
	latest, _, _ := ns.Get(LatestName("clicks"))
	epoch2, _, _ := ns.Get(EpochName("clicks", 2))
	lc, ec := latest.Counts(), epoch2.Counts()
	for i := range lc {
		if lc[i] != ec[i] {
			t.Fatal("@latest does not alias the newest epoch")
		}
	}

	// An interval with no events mints nothing and spends nothing.
	spent := ns.Accountant().Spent()
	res, err = in.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams != 0 || res.Minted != 0 {
		t.Fatalf("empty flush minted: %+v", res)
	}
	if got := ns.Accountant().Spent(); got != spent {
		t.Fatalf("empty flush spent budget: %v -> %v", spent, got)
	}
	if st := in.Stats(); st.EpochMints != 2 || st.Flushes != 3 {
		t.Fatalf("stats mints %d flushes %d, want 2 and 3", st.EpochMints, st.Flushes)
	}
}

// TestWindowEqualsSumOfEpochs is the sliding-window property test: at
// every mint, the "@window" release's counts equal the element-wise sum
// of the counts of its member epoch releases, exactly (composition is
// deterministic post-processing, not a fresh noisy release).
func TestWindowEqualsSumOfEpochs(t *testing.T) {
	const window = 3
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, func(c *Config) { c.Window = window })
	ns := store.Namespace(dphist.DefaultNamespace)

	for epoch := 1; epoch <= 6; epoch++ {
		weights := make([]float64, 8)
		for b := range weights {
			weights[b] = float64((epoch*3 + b*5) % 7)
		}
		feed(t, in, "", "clicks", weights)
		if _, err := in.Flush(); err != nil {
			t.Fatal(err)
		}

		wrel, _, ok := ns.Get(WindowName("clicks"))
		if !ok {
			t.Fatalf("epoch %d: no window release", epoch)
		}
		want := make([]float64, 8)
		members := 0
		for i := epoch - window + 1; i <= epoch; i++ {
			if i < 1 {
				continue
			}
			erel, _, ok := ns.Get(EpochName("clicks", i))
			if !ok {
				t.Fatalf("epoch %d: member %d missing", epoch, i)
			}
			for j, v := range erel.Counts() {
				want[j] += v
			}
			members++
		}
		if members == 0 || members > window {
			t.Fatalf("epoch %d: window has %d members", epoch, members)
		}
		got := wrel.Counts()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("epoch %d bucket %d: window %v, sum of members %v", epoch, j, got[j], want[j])
			}
		}
		if eps := wrel.Epsilon(); eps != testEps {
			t.Fatalf("window epsilon %v, want max member epsilon %v", eps, testEps)
		}
	}
	// Six epochs, six charges: the windows were free.
	if spent := ns.Accountant().Spent(); math.Abs(spent-6*testEps) > 1e-9 {
		t.Fatalf("spent %v, want %v (windows must not charge)", spent, 6*testEps)
	}
}

// TestRetainPrunesOldEpochs checks the eager retention path: epoch
// n-Retain disappears as epoch n mints, and the window shrinks to the
// epochs that still exist.
func TestRetainPrunesOldEpochs(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, func(c *Config) { c.Retain = 2; c.Window = 2 })
	ns := store.Namespace(dphist.DefaultNamespace)
	for epoch := 1; epoch <= 4; epoch++ {
		feed(t, in, "", "clicks", []float64{1, 2, 3, 0, 0, 0, 0, 0})
		if _, err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, gone := range []int{1, 2} {
		if _, _, ok := ns.Get(EpochName("clicks", gone)); ok {
			t.Fatalf("epoch %d survived retention of 2", gone)
		}
	}
	for _, kept := range []int{3, 4} {
		if _, _, ok := ns.Get(EpochName("clicks", kept)); !ok {
			t.Fatalf("epoch %d pruned too eagerly", kept)
		}
	}
	// Deletion never rewinds the sequence: next mint is epoch 5.
	feed(t, in, "", "clicks", []float64{1, 0, 0, 0, 0, 0, 0, 0})
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ns.Get(EpochName("clicks", 5)); !ok {
		t.Fatal("sequence rewound after pruning")
	}
}

// TestExpiredEpochLeavesQueryCleanly lets an epoch age out through the
// store TTL and checks the read path afterwards: the query answers
// ErrReleaseNotFound, and the answer cache does not resurrect the
// expired release.
func TestExpiredEpochLeavesQueryCleanly(t *testing.T) {
	store := dphist.NewStore(
		dphist.WithBudget(100),
		dphist.WithTTL(60*time.Millisecond),
		dphist.WithQueryCache(64),
	)
	in := newTestIngester(t, store, nil)
	ns := store.Namespace(dphist.DefaultNamespace)

	feed(t, in, "", "clicks", []float64{4, 4, 4, 4, 0, 0, 0, 0})
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	name := EpochName("clicks", 1)
	specs := []dphist.RangeSpec{{Lo: 0, Hi: 4}}
	if _, _, err := ns.Query(name, specs); err != nil {
		t.Fatalf("fresh epoch unqueryable: %v", err)
	}
	// Same batch again: served from cache, proving the entry is warm.
	if _, _, err := ns.Query(name, specs); err != nil {
		t.Fatal(err)
	}
	if st := store.CacheStats(); st.Hits == 0 {
		t.Fatal("second query did not hit the cache")
	}

	time.Sleep(90 * time.Millisecond)
	if _, _, err := ns.Query(name, specs); !errors.Is(err, dphist.ErrReleaseNotFound) {
		t.Fatalf("expired epoch query: %v, want ErrReleaseNotFound", err)
	}
	if _, _, ok := ns.Get(name); ok {
		t.Fatal("expired epoch still gettable")
	}
}

// TestBudgetExhaustionDropsEpoch: a refused charge surfaces in
// Stats.MintFailures, releases nothing, and leaves earlier epochs
// intact.
func TestBudgetExhaustionDropsEpoch(t *testing.T) {
	// Room for exactly one epoch at testEps.
	store := dphist.NewStore(dphist.WithBudget(testEps + 0.1))
	in := newTestIngester(t, store, nil)
	ns := store.Namespace(dphist.DefaultNamespace)

	feed(t, in, "", "clicks", []float64{1, 1, 0, 0, 0, 0, 0, 0})
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	feed(t, in, "", "clicks", []float64{0, 0, 1, 1, 0, 0, 0, 0})
	res, err := in.Flush()
	if !errors.Is(err, dphist.ErrBudgetExceeded) {
		t.Fatalf("flush past budget: %v, want ErrBudgetExceeded", err)
	}
	if res.Failed != 1 || res.Minted != 0 {
		t.Fatalf("flush result %+v", res)
	}
	if _, _, ok := ns.Get(EpochName("clicks", 2)); ok {
		t.Fatal("refused epoch was stored")
	}
	if _, _, ok := ns.Get(EpochName("clicks", 1)); !ok {
		t.Fatal("earlier epoch lost")
	}
	if st := in.Stats(); st.MintFailures != 1 {
		t.Fatalf("mint failures %d, want 1", st.MintFailures)
	}
}

// TestMultiStreamMultiNamespace: streams and namespaces mint
// independently, and per-shard buffers merge into whole histograms.
func TestMultiStreamMultiNamespace(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, nil)
	feed(t, in, "acme", "clicks", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	feed(t, in, "acme", "views", []float64{8, 7, 6, 5, 4, 3, 2, 1})
	feed(t, in, "globex", "clicks", []float64{9, 0, 0, 0, 0, 0, 0, 9})
	res, err := in.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams != 3 || res.Minted != 3 {
		t.Fatalf("flush %+v, want 3 streams minted", res)
	}
	for _, probe := range []struct{ ns, strm string }{
		{"acme", "clicks"}, {"acme", "views"}, {"globex", "clicks"},
	} {
		if _, _, ok := store.Namespace(probe.ns).Get(EpochName(probe.strm, 1)); !ok {
			t.Fatalf("%s/%s epoch missing", probe.ns, probe.strm)
		}
	}
	if _, _, ok := store.Namespace("globex").Get(EpochName("views", 1)); ok {
		t.Fatal("namespace bleed: globex minted a stream it never saw")
	}
	if st := in.Stats(); st.Streams != 3 {
		t.Fatalf("stats streams %d, want 3", st.Streams)
	}
}

// TestEpochAccuracy sanity-checks that the minted release actually
// reflects the drained histogram: with a large per-epoch epsilon the
// released counts hug the true ones.
func TestEpochAccuracy(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(1000))
	in := newTestIngester(t, store, func(c *Config) { c.Epsilon = 200 })
	truth := []float64{100, 50, 25, 0, 0, 75, 10, 5}
	feed(t, in, "", "clicks", truth)
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	rel, _, _ := store.Namespace(dphist.DefaultNamespace).Get(EpochName("clicks", 1))
	for i, got := range rel.Counts() {
		if math.Abs(got-truth[i]) > 3 {
			t.Fatalf("bucket %d: released %v, truth %v", i, got, truth[i])
		}
	}
}

// TestDurableResume is the kill-and-restart contract: a fresh ingester
// over a reopened store continues the epoch sequence exactly where the
// old one stopped, and the reopened budget ledger shows each epoch
// charged once.
func TestDurableResume(t *testing.T) {
	dir := t.TempDir()
	store, err := dphist.OpenStore(dir, dphist.WithBudget(100), dphist.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	in := newTestIngester(t, store, nil)
	for epoch := 1; epoch <= 3; epoch++ {
		feed(t, in, "", "clicks", []float64{float64(epoch), 0, 0, 0, 0, 0, 0, 1})
		if _, err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := dphist.OpenStore(dir, dphist.WithBudget(100), dphist.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ns := store2.Namespace(dphist.DefaultNamespace)
	if spent := ns.Accountant().Spent(); math.Abs(spent-3*testEps) > 1e-9 {
		t.Fatalf("reopened ledger spent %v, want %v", spent, 3*testEps)
	}
	if v := ns.Version(LatestName("clicks")); v != 3 {
		t.Fatalf("reopened latest version %d, want 3", v)
	}

	in2 := newTestIngester(t, store2, nil)
	feed(t, in2, "", "clicks", []float64{0, 0, 0, 0, 9, 0, 0, 0})
	if _, err := in2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ns.Get(EpochName("clicks", 4)); !ok {
		t.Fatal("restart did not resume at epoch 4")
	}
	if _, _, ok := ns.Get(EpochName("clicks", 5)); ok {
		t.Fatal("restart skipped ahead")
	}
	if spent := ns.Accountant().Spent(); math.Abs(spent-4*testEps) > 1e-9 {
		t.Fatalf("ledger spent %v after resumed mint, want %v (no double charge)", spent, 4*testEps)
	}
}

// TestLiveCounts exercises the continual-count surface: running totals
// are queryable between mints, track the truth at large epsilon, and
// cost one per-stream charge on top of the epoch charges.
func TestLiveCounts(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(1000))
	in := newTestIngester(t, store, func(c *Config) { c.LiveEpsilon = 300 })
	ns := store.Namespace(dphist.DefaultNamespace)

	if _, err := in.LiveCounts("", "clicks", []int{0, 99}); err == nil {
		t.Fatal("out-of-domain bucket accepted")
	}
	// Unknown stream: all zeros, not an error.
	got, err := in.LiveCounts("", "clicks", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("unseen stream has nonzero live counts")
		}
	}

	truth := []float64{40, 0, 12, 0, 0, 0, 0, 3}
	feed(t, in, "", "clicks", truth)
	feed(t, in, "", "clicks", truth) // totals double
	got, err = in.LiveCounts("", "clicks", []int{0, 2, 7, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{80, 24, 6, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 2 {
			t.Fatalf("live bucket %d: %v, want about %v", i, got[i], want[i])
		}
	}
	// One per-stream live charge, no epoch charges yet.
	if spent := ns.Accountant().Spent(); math.Abs(spent-300) > 1e-9 {
		t.Fatalf("spent %v, want 300 (one live charge)", spent)
	}
	if st := in.Stats(); st.LiveCounters != 3 {
		t.Fatalf("live counters %d, want 3 (one per touched bucket)", st.LiveCounters)
	}
}

func TestLiveDisabled(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, nil) // LiveEpsilon zero
	feed(t, in, "", "clicks", []float64{1, 0, 0, 0, 0, 0, 0, 0})
	if _, err := in.LiveCounts("", "clicks", []int{0}); !errors.Is(err, ErrLiveDisabled) {
		t.Fatalf("live query on disabled surface: %v, want ErrLiveDisabled", err)
	}
}

func TestLiveChargeRefusedDisablesStream(t *testing.T) {
	// Budget covers epochs but not the live charge.
	store := dphist.NewStore(dphist.WithBudget(1))
	in := newTestIngester(t, store, func(c *Config) { c.LiveEpsilon = 5 })
	feed(t, in, "", "clicks", []float64{1, 1, 0, 0, 0, 0, 0, 0})
	// Flush first: the refusal is decided when a worker first sees the
	// stream, and the drain serializes behind that batch.
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.LiveCounts("", "clicks", []int{0}); !errors.Is(err, ErrLiveDisabled) {
		t.Fatalf("refused-charge live query: %v, want ErrLiveDisabled", err)
	}
	// Epoch mints keep working: the refused live charge spent nothing.
	if _, _, ok := store.Namespace(dphist.DefaultNamespace).Get(EpochName("clicks", 1)); !ok {
		t.Fatal("epoch mint broken by refused live charge")
	}
}

func TestClosedIngester(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, func(c *Config) { c.LiveEpsilon = 1 })
	feed(t, in, "", "clicks", []float64{1, 0, 0, 0, 0, 0, 0, 0})
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	// Close mints the final partial epoch.
	if _, _, ok := store.Namespace(dphist.DefaultNamespace).Get(EpochName("clicks", 1)); !ok {
		t.Fatal("final flush on Close did not mint")
	}
	if _, err := in.Ingest("", []Event{{Stream: "clicks", Bucket: 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if _, err := in.LiveCounts("", "clicks", []int{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("LiveCounts after Close: %v, want ErrClosed", err)
	}
	if _, err := in.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestScheduledMint checks the epoch scheduler actually fires: with a
// short interval, posted events become a queryable epoch release within
// a few intervals, with no manual Flush.
func TestScheduledMint(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(100))
	in := newTestIngester(t, store, func(c *Config) { c.Epoch = 20 * time.Millisecond })
	feed(t, in, "", "clicks", []float64{3, 0, 0, 0, 0, 0, 0, 1})
	ns := store.Namespace(dphist.DefaultNamespace)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := ns.Get(EpochName("clicks", 1)); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never minted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentIngestLiveFlush is the race-detector workout for the
// whole pipeline: many writers posting batches, readers hitting the
// live surface, and flushes interleaving, then a clean Close.
func TestConcurrentIngestLiveFlush(t *testing.T) {
	store := dphist.NewStore(dphist.WithBudget(1000), dphist.WithQueryCache(32))
	in := newTestIngester(t, store, func(c *Config) {
		c.LiveEpsilon = 1
		c.Window = 2
		c.Shards = 4
	})
	const writers, batches = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				events := []Event{
					{Stream: "clicks", Bucket: (w + b) % 8},
					{Stream: "views", Bucket: (w * b) % 8, Weight: 2},
				}
				if _, err := in.Ingest("", events); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := in.LiveCounts("", "clicks", []int{0, 3, 7}); err != nil && !errors.Is(err, ErrClosed) {
				t.Error(err)
				return
			}
			_ = in.Stats()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := in.Flush(); err != nil && !errors.Is(err, ErrClosed) {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if want := int64(writers * batches * 2); st.Events != want {
		t.Fatalf("events %d, want %d", st.Events, want)
	}
	// Every accepted event is in exactly one epoch: summing all epochs of
	// both streams recovers the total event weight, up to noise.
	ns := store.Namespace(dphist.DefaultNamespace)
	total := 0.0
	for _, strm := range []string{"clicks", "views"} {
		for i := 1; ; i++ {
			rel, _, ok := ns.Get(EpochName(strm, i))
			if !ok {
				break
			}
			for _, v := range rel.Counts() {
				total += v
			}
		}
	}
	want := float64(writers * batches * 3) // weight 1 + weight 2 per batch step
	if math.Abs(total-want) > 0.25*want {
		t.Fatalf("epochs sum to %v, want about %v", total, want)
	}
}

// BenchmarkIngest drives pre-built 1024-event batches through the
// intake path — hash, shard dispatch, accumulate — with the scheduler
// idle. CI's bench smoke runs this at -benchtime=1x as a liveness
// check; cmd/dphist-bench's "ingest" experiment measures real rates.
func BenchmarkIngest(b *testing.B) {
	store := dphist.NewStore(dphist.WithBudget(1e9))
	mech, err := dphist.New(dphist.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	in, err := New(Config{
		Store: store, Mechanism: mech, Domain: 1024,
		Epoch: time.Hour, Epsilon: 0.1, Shards: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	in.Start()
	defer in.Close()
	batch := make([]Event, 1024)
	for i := range batch {
		batch[i] = Event{Stream: "clicks", Bucket: (i * 17) % 1024}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Ingest("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNameHelpers(t *testing.T) {
	if got := EpochName("clicks", 42); got != "clicks@epoch-42" {
		t.Fatalf("EpochName = %q", got)
	}
	if got := LatestName("clicks"); got != "clicks@latest" {
		t.Fatalf("LatestName = %q", got)
	}
	if got := WindowName("clicks"); got != "clicks@window" {
		t.Fatalf("WindowName = %q", got)
	}
	if err := dphist.ValidateName(EpochName("clicks", 1)); err != nil {
		t.Fatalf("epoch names must be storable: %v", err)
	}
}
