// Package ingest is the write-path counterpart of the release store: a
// sharded pipeline that absorbs high-rate event streams and mints epoch
// and sliding-window histogram releases on a schedule, turning the
// paper's static mint-once/query-forever deployment into a continual-
// release one (the continual-observation scenario family of Nelson &
// Reuben's SoK; Chan et al.'s counter is the per-bucket live surface).
//
// Shape of the pipeline:
//
//   - Intake. Ingest(ns, events) hashes each event by (namespace,
//     stream, bucket) onto one of N worker shards and ships per-shard
//     batches over a bounded channel — callers feel backpressure instead
//     of unbounded queueing. Each worker owns one histogram buffer per
//     (namespace, stream) it has seen, so the hot path is a map lookup
//     and a float add with no cross-shard locks.
//
//   - Epochs. Every Epoch interval the scheduler drains all shards,
//     merges the per-shard buffers, and mints one release per
//     (namespace, stream) through the store's Session path: any
//     registered strategy, budget charged per epoch via the namespace
//     Accountant, stored under the versioned name "<stream>@epoch-<n>"
//     with a "<stream>@latest" alias. On a durable store the mint is
//     journaled by the existing Put/charge records, and the epoch
//     sequence is recovered from the store's persistent version
//     counters — a kill-and-restart resumes exactly, without
//     re-charging for epochs already minted.
//
//   - Windows. With Window W > 1, each mint also composes the last W
//     epoch releases into "<stream>@window" via dphist.ComposeSum —
//     pure post-processing (each event lands in exactly one epoch, so
//     the window is parallel composition over its members), costing no
//     budget. Old epochs age out through the store's existing TTL path,
//     or eagerly via Retain.
//
//   - Live counts. With LiveEpsilon > 0, each (namespace, stream,
//     bucket) gets a private continual counter (internal/stream) fed by
//     the worker that owns the bucket, so running totals are queryable
//     between epoch mints. Buckets partition a stream's events, so the
//     per-stream cost is LiveEpsilon by parallel composition; it is
//     charged to the namespace Accountant once per (namespace, stream)
//     per process lifetime — a restart starts fresh counters (fresh
//     noise, a genuinely new release sequence) and correctly charges
//     again. Counters assume arrival times are observable (the standard
//     continual-observation model); only the counts are protected.
//
// Budget exhaustion is not an error the pipeline can repair: a refused
// epoch charge drops that epoch's drained counts (they could never be
// released anyway) and is surfaced through Stats.MintFailures.
package ingest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dphist/dphist"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/stream"
)

// ErrClosed reports an operation on an ingester after Close.
var ErrClosed = errors.New("ingest: ingester is closed")

// ErrLiveDisabled reports a live-count query against a stream whose
// continual counters are off: LiveEpsilon is zero, or the namespace
// budget refused the per-stream charge.
var ErrLiveDisabled = errors.New("ingest: live count surface disabled")

// DefaultLiveHorizon is the per-bucket continual-counter horizon when
// Config.LiveHorizon is zero: enough for a million arrivals per bucket
// at O(log) memory and noise scale 21/eps.
const DefaultLiveHorizon = 1 << 20

// EpochName returns the versioned store name of a stream's n-th epoch
// release (1-based): "clicks@epoch-42".
func EpochName(stream string, n int) string {
	return fmt.Sprintf("%s@epoch-%d", stream, n)
}

// LatestName returns the store name aliasing a stream's most recent
// epoch release. Its version counter equals the number of epochs ever
// minted for the stream, which is how a restarted ingester resumes the
// sequence.
func LatestName(stream string) string { return stream + "@latest" }

// WindowName returns the store name of a stream's sliding-window
// release: the sum of its last Window epochs.
func WindowName(stream string) string { return stream + "@window" }

// Event is one arrival on a named stream within the posting namespace:
// the unit at position Bucket grows by Weight.
type Event struct {
	// Stream names the histogram the event belongs to; each stream mints
	// its own epoch releases.
	Stream string `json:"stream"`
	// Bucket is the histogram position in [0, Domain).
	Bucket int `json:"bucket"`
	// Weight is the contribution (how much the bucket's count grows);
	// zero means 1. Negative, NaN, and infinite weights are dropped.
	Weight float64 `json:"weight,omitempty"`
}

// Config describes an ingest pipeline.
type Config struct {
	// Store retains the minted releases and owns the per-namespace
	// budgets. Open it with dphist.OpenStore for a durable pipeline.
	// Required.
	Store *dphist.Store
	// Mechanism runs the epoch release pipelines. Required.
	Mechanism *dphist.Mechanism
	// Domain is the number of buckets per stream histogram. Required.
	Domain int
	// Epoch is the mint interval. Required positive.
	Epoch time.Duration
	// Strategy is the epoch release pipeline (default StrategyUniversal).
	// StrategyHierarchy and StrategyUniversal2D need inputs an event
	// stream does not carry and are rejected.
	Strategy dphist.Strategy
	// Epsilon is the privacy cost charged per epoch mint. Required
	// positive.
	Epsilon float64
	// Window composes the last Window epochs into a rolling
	// "<stream>@window" release on every mint; 0 or 1 disables it.
	Window int
	// Shards is the worker count (default 4). Events hash by (namespace,
	// stream, bucket), so one bucket is always owned by one worker.
	Shards int
	// QueueLen bounds each worker's batch queue (default 256 batches);
	// past it Ingest blocks, which is the backpressure contract.
	QueueLen int
	// Retain, when positive, deletes "<stream>@epoch-<n-Retain>" as
	// epoch n is minted, bounding live epochs per stream eagerly; with
	// Retain zero old epochs only age out via the store's TTL.
	Retain int
	// LiveEpsilon enables the continual-count surface at this per-stream
	// privacy cost (charged once per namespace/stream per process
	// lifetime); 0 disables it.
	LiveEpsilon float64
	// LiveHorizon caps arrivals per bucket counter (default
	// DefaultLiveHorizon).
	LiveHorizon int
	// Seed drives the live counters' noise streams.
	Seed uint64
}

// Stats is the pipeline's cumulative scorecard.
type Stats struct {
	// Events counts accepted events; Dropped counts events refused at
	// intake (bucket out of range, bad weight).
	Events  int64 `json:"events"`
	Dropped int64 `json:"dropped"`
	// Batches counts Ingest calls accepted.
	Batches int64 `json:"batches"`
	// Streams counts distinct (namespace, stream) pairs ever seen.
	Streams int64 `json:"streams"`
	// Flushes counts epoch drains (scheduled and manual); EpochMints and
	// MintFailures count per-stream mint outcomes within them.
	Flushes      int64 `json:"flushes"`
	EpochMints   int64 `json:"epoch_mints"`
	MintFailures int64 `json:"mint_failures"`
	// LiveCounters counts live per-bucket counters created;
	// LiveExhausted counts events past a counter's horizon (the counter
	// freezes at its last estimate).
	LiveCounters  int64 `json:"live_counters"`
	LiveExhausted int64 `json:"live_exhausted"`
	// LastFlushMicros is the wall time of the most recent flush.
	LastFlushMicros int64 `json:"last_flush_micros"`
}

// nsStream addresses one stream inside a namespace.
type nsStream struct{ ns, stream string }

// accum is one worker's state for one (namespace, stream): the epoch
// histogram buffer being accumulated, plus the live counters for the
// buckets this shard owns.
type accum struct {
	counts   []float64
	live     bool
	counters map[int]*stream.Counter
}

// drainReply carries one shard's buffers out of a drain.
type drainReply map[nsStream][]float64

// liveQuery asks a shard for the current estimates of the buckets it
// owns for one stream.
type liveQuery struct {
	key     nsStream
	buckets []int
	reply   chan []float64 // aligned with buckets
}

// shardMsg is the worker channel's message union: exactly one field set.
type shardMsg struct {
	ns     string
	events []Event
	drain  chan drainReply
	query  *liveQuery
}

type shard struct {
	ch  chan shardMsg
	acc map[nsStream]*accum
}

// Ingester is the sharded ingest pipeline. Construct with New, launch
// with Start, and Close before closing the store. All methods are safe
// for concurrent use.
type Ingester struct {
	cfg Config

	shards []*shard

	mu     sync.RWMutex // guards closed against channel sends
	closed bool

	flushMu sync.Mutex // serializes drains and shutdown
	stopped bool       // workers gone; guarded by flushMu

	schedStop chan struct{}
	schedDone chan struct{}
	wg        sync.WaitGroup

	sessMu   sync.Mutex
	sessions map[string]*dphist.Session

	streamMu sync.Mutex
	seen     map[nsStream]bool // value: live surface allowed

	counterSeq atomic.Int64

	events, dropped, batches, streams atomic.Int64
	flushes, epochMints, mintFailures atomic.Int64
	liveCounters, liveExhausted       atomic.Int64
	lastFlushMicros                   atomic.Int64
}

// New validates the configuration and returns an idle ingester; Start
// launches its workers and epoch scheduler.
func New(cfg Config) (*Ingester, error) {
	if cfg.Store == nil {
		return nil, errors.New("ingest: nil store")
	}
	if cfg.Mechanism == nil {
		return nil, errors.New("ingest: nil mechanism")
	}
	if cfg.Domain < 1 {
		return nil, fmt.Errorf("ingest: domain %d < 1", cfg.Domain)
	}
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("ingest: epoch interval %v must be positive", cfg.Epoch)
	}
	if !(cfg.Epsilon > 0) {
		return nil, fmt.Errorf("ingest: per-epoch epsilon %v must be positive", cfg.Epsilon)
	}
	if !cfg.Strategy.Valid() {
		return nil, fmt.Errorf("ingest: invalid strategy %d", int(cfg.Strategy))
	}
	if cfg.Strategy == dphist.StrategyHierarchy || cfg.Strategy == dphist.StrategyUniversal2D {
		return nil, fmt.Errorf("ingest: strategy %v needs inputs an event stream does not carry", cfg.Strategy)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 || cfg.Shards > 1024 {
		return nil, fmt.Errorf("ingest: shard count %d outside [1, 1024]", cfg.Shards)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.LiveHorizon <= 0 {
		cfg.LiveHorizon = DefaultLiveHorizon
	}
	in := &Ingester{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		schedStop: make(chan struct{}),
		schedDone: make(chan struct{}),
		sessions:  make(map[string]*dphist.Session),
		seen:      make(map[nsStream]bool),
	}
	for i := range in.shards {
		in.shards[i] = &shard{
			ch:  make(chan shardMsg, cfg.QueueLen),
			acc: make(map[nsStream]*accum),
		}
	}
	return in, nil
}

// Start launches the shard workers and the epoch scheduler.
func (in *Ingester) Start() {
	for _, sh := range in.shards {
		in.wg.Add(1)
		go in.worker(sh)
	}
	go in.scheduler()
}

// scheduler mints an epoch every Config.Epoch until Close.
func (in *Ingester) scheduler() {
	defer close(in.schedDone)
	ticker := time.NewTicker(in.cfg.Epoch)
	defer ticker.Stop()
	for {
		select {
		case <-in.schedStop:
			return
		case <-ticker.C:
			// Flush failures (budget exhaustion, store closed mid-
			// shutdown) are recorded in Stats; the schedule keeps going
			// because later epochs are independent of earlier failures.
			_, _ = in.Flush()
		}
	}
}

// shardFor hashes (namespace, stream, bucket) onto a worker, FNV-1a with
// separators so field boundaries cannot collide. All events of one
// bucket land on one worker — the single writer its live counter needs.
func (in *Ingester) shardFor(ns, strm string, bucket int) int {
	if len(in.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(ns); i++ {
		h = (h ^ uint64(ns[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(strm); i++ {
		h = (h ^ uint64(strm[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	v := uint64(bucket)
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * prime64
		v >>= 8
	}
	return int(h % uint64(len(in.shards)))
}

// Ingest absorbs a batch of events into namespace ns, blocking when the
// owning shards' queues are full (backpressure). It returns how many
// events were accepted; events with an out-of-range bucket, a bad
// stream name, or a negative or non-finite weight are dropped and
// counted in Stats.Dropped.
func (in *Ingester) Ingest(ns string, events []Event) (int, error) {
	if ns == "" {
		ns = dphist.DefaultNamespace
	}
	if err := dphist.ValidateName(ns); err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, nil
	}
	perShard := make([][]Event, len(in.shards))
	accepted := 0
	for _, e := range events {
		if e.Bucket < 0 || e.Bucket >= in.cfg.Domain ||
			e.Weight < 0 || e.Weight != e.Weight || e.Weight > 1e308 ||
			dphist.ValidateName(e.Stream) != nil {
			in.dropped.Add(1)
			continue
		}
		idx := in.shardFor(ns, e.Stream, e.Bucket)
		perShard[idx] = append(perShard[idx], e)
		accepted++
	}
	if accepted == 0 {
		return 0, nil
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return 0, ErrClosed
	}
	for idx, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		in.shards[idx].ch <- shardMsg{ns: ns, events: batch}
	}
	in.events.Add(int64(accepted))
	in.batches.Add(1)
	return accepted, nil
}

// worker is one shard's loop: it owns the shard's accumulators
// exclusively, so event application needs no locks at all.
func (in *Ingester) worker(sh *shard) {
	defer in.wg.Done()
	for msg := range sh.ch {
		switch {
		case msg.drain != nil:
			out := make(drainReply, len(sh.acc))
			for key, a := range sh.acc {
				has := false
				for _, v := range a.counts {
					if v != 0 {
						has = true
						break
					}
				}
				if has {
					out[key] = a.counts
					a.counts = make([]float64, in.cfg.Domain)
				}
			}
			msg.drain <- out
		case msg.query != nil:
			q := msg.query
			answers := make([]float64, len(q.buckets))
			if a := sh.acc[q.key]; a != nil && a.counters != nil {
				for i, b := range q.buckets {
					if c := a.counters[b]; c != nil {
						answers[i], _ = c.Last()
					}
				}
			}
			q.reply <- answers
		default:
			for _, e := range msg.events {
				key := nsStream{msg.ns, e.Stream}
				a := sh.acc[key]
				if a == nil {
					a = &accum{
						counts: make([]float64, in.cfg.Domain),
						live:   in.registerStream(key),
					}
					if a.live {
						a.counters = make(map[int]*stream.Counter)
					}
					sh.acc[key] = a
				}
				w := e.Weight
				if w == 0 {
					w = 1
				}
				a.counts[e.Bucket] += w
				if a.live {
					c := a.counters[e.Bucket]
					if c == nil {
						src := laplace.Stream(in.cfg.Seed, int(in.counterSeq.Add(1)))
						c, _ = stream.NewCounter(in.cfg.LiveEpsilon, in.cfg.LiveHorizon, src)
						a.counters[e.Bucket] = c
						in.liveCounters.Add(1)
					}
					if _, err := c.Feed(w); err != nil {
						// Horizon exhausted: the counter freezes at its
						// last estimate rather than overspending its
						// privacy analysis.
						in.liveExhausted.Add(1)
					}
				}
			}
		}
	}
}

// registerStream records the first sighting of a (namespace, stream)
// pair and, when the live surface is on, charges its per-stream epsilon
// to the namespace budget. Buckets partition the stream's events, so
// every bucket counter runs under this one charge (parallel
// composition). A refused charge disables the stream's live surface
// permanently; epoch mints are unaffected.
func (in *Ingester) registerStream(key nsStream) bool {
	in.streamMu.Lock()
	defer in.streamMu.Unlock()
	if live, ok := in.seen[key]; ok {
		return live
	}
	in.streams.Add(1)
	live := false
	if in.cfg.LiveEpsilon > 0 {
		err := in.cfg.Store.Namespace(key.ns).Accountant().
			Spend("ingest:live:"+key.stream, in.cfg.LiveEpsilon)
		live = err == nil
	}
	in.seen[key] = live
	return live
}

// LiveCounts answers the private running totals of the given buckets on
// one stream, between epoch mints, from the continual counters. Buckets
// with no arrivals yet answer 0. It fails with ErrLiveDisabled when the
// live surface is off or the stream's charge was refused.
func (in *Ingester) LiveCounts(ns, strm string, buckets []int) ([]float64, error) {
	if ns == "" {
		ns = dphist.DefaultNamespace
	}
	if err := dphist.ValidateName(ns); err != nil {
		return nil, err
	}
	if in.cfg.LiveEpsilon <= 0 {
		return nil, ErrLiveDisabled
	}
	for _, b := range buckets {
		if b < 0 || b >= in.cfg.Domain {
			return nil, fmt.Errorf("ingest: bucket %d outside domain [0, %d)", b, in.cfg.Domain)
		}
	}
	key := nsStream{ns, strm}
	in.streamMu.Lock()
	live, known := in.seen[key]
	in.streamMu.Unlock()
	if known && !live {
		return nil, fmt.Errorf("%w: budget refused the per-stream charge", ErrLiveDisabled)
	}
	answers := make([]float64, len(buckets))
	if len(buckets) == 0 {
		return answers, nil
	}
	// Partition the buckets by owning shard and let each worker answer
	// its own counters — the query serializes with that shard's feeds,
	// so every answer is a released estimate, never a torn read.
	type part struct {
		buckets []int
		pos     []int
	}
	parts := make(map[int]*part)
	for i, b := range buckets {
		idx := in.shardFor(ns, strm, b)
		p := parts[idx]
		if p == nil {
			p = &part{}
			parts[idx] = p
		}
		p.buckets = append(p.buckets, b)
		p.pos = append(p.pos, i)
	}
	in.mu.RLock()
	if in.closed {
		in.mu.RUnlock()
		return nil, ErrClosed
	}
	replies := make([]*liveQuery, 0, len(parts))
	queries := make([]*part, 0, len(parts))
	for idx, p := range parts {
		q := &liveQuery{key: key, buckets: p.buckets, reply: make(chan []float64, 1)}
		in.shards[idx].ch <- shardMsg{query: q}
		replies = append(replies, q)
		queries = append(queries, p)
	}
	in.mu.RUnlock()
	for i, q := range replies {
		vals := <-q.reply
		for j, pos := range queries[i].pos {
			answers[pos] = vals[j]
		}
	}
	return answers, nil
}

// FlushResult summarizes one epoch drain.
type FlushResult struct {
	// Streams is how many (namespace, stream) pairs had data to mint.
	Streams int
	// Minted and Failed count per-stream mint outcomes.
	Minted int
	Failed int
	// Elapsed is the wall time of the whole drain-and-mint cycle.
	Elapsed time.Duration
}

// Flush synchronously drains every shard and mints one epoch release
// per (namespace, stream) that accumulated data — the operation the
// scheduler runs every Epoch interval. Streams with no new events mint
// nothing and spend nothing. The returned error joins the per-stream
// failures; successfully minted streams are unaffected by a neighbor's
// failure.
func (in *Ingester) Flush() (FlushResult, error) {
	in.flushMu.Lock()
	defer in.flushMu.Unlock()
	if in.stopped {
		return FlushResult{}, ErrClosed
	}
	return in.flushLocked()
}

// flushLocked drains and mints; the caller holds flushMu and guarantees
// the workers are alive.
func (in *Ingester) flushLocked() (FlushResult, error) {
	start := time.Now()
	// Drain every shard, then merge: a stream's buckets are spread
	// across shards, and the epoch release needs the whole histogram.
	pending := make([]chan drainReply, len(in.shards))
	for i, sh := range in.shards {
		pending[i] = make(chan drainReply, 1)
		sh.ch <- shardMsg{drain: pending[i]}
	}
	merged := make(map[nsStream][]float64)
	for _, ch := range pending {
		for key, counts := range <-ch {
			if have := merged[key]; have != nil {
				for i, v := range counts {
					have[i] += v
				}
			} else {
				merged[key] = counts
			}
		}
	}
	in.flushes.Add(1)
	keys := make([]nsStream, 0, len(merged))
	for key := range merged {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ns != keys[j].ns {
			return keys[i].ns < keys[j].ns
		}
		return keys[i].stream < keys[j].stream
	})
	res := FlushResult{Streams: len(keys)}
	var errs []error
	for _, key := range keys {
		if err := in.mintEpoch(key, merged[key]); err != nil {
			res.Failed++
			in.mintFailures.Add(1)
			errs = append(errs, fmt.Errorf("%s/%s: %w", key.ns, key.stream, err))
			continue
		}
		res.Minted++
		in.epochMints.Add(1)
	}
	res.Elapsed = time.Since(start)
	in.lastFlushMicros.Store(res.Elapsed.Microseconds())
	return res, errors.Join(errs...)
}

// nextEpoch resumes a stream's epoch sequence from the store's
// persistent version counters: the "@latest" alias is Put once per
// successful mint, so its version counts epochs minted ever — across
// restarts of a durable store. The probe past it covers the crash
// window between an epoch's Put and the alias Put: an epoch name that
// already has a version was already minted (and charged), so it is
// never re-minted.
func (in *Ingester) nextEpoch(ns *dphist.Namespace, strm string) int {
	n := ns.Version(LatestName(strm))
	for ns.Version(EpochName(strm, n+1)) > 0 {
		n++
	}
	return n + 1
}

// mintEpoch releases one stream's drained histogram as its next epoch:
// one budget charge through the Session path, a versioned Put, the
// "@latest" alias, the optional sliding-window composition (free), and
// the optional eager retention prune.
func (in *Ingester) mintEpoch(key nsStream, counts []float64) error {
	ns := in.cfg.Store.Namespace(key.ns)
	sess, err := in.session(key.ns)
	if err != nil {
		return err
	}
	n := in.nextEpoch(ns, key.stream)
	rel, _, err := ns.Mint(sess, EpochName(key.stream, n), dphist.Request{
		Strategy: in.cfg.Strategy,
		Counts:   counts,
		Epsilon:  in.cfg.Epsilon,
	})
	if err != nil {
		return err
	}
	// The alias is a second Put of the same immutable release — no copy,
	// no charge — whose version counter is the durable epoch cursor.
	if _, err := ns.Put(LatestName(key.stream), rel); err != nil {
		return err
	}
	if in.cfg.Window > 1 {
		if err := in.mintWindow(ns, key.stream, n); err != nil {
			return err
		}
	}
	if in.cfg.Retain > 0 && n > in.cfg.Retain {
		ns.Delete(EpochName(key.stream, n-in.cfg.Retain))
	}
	return nil
}

// mintWindow composes the last Window epochs ending at n into the
// rolling "<stream>@window" release. Epochs already expired or pruned
// simply drop out of the sum — the window covers what the store still
// serves. Pure post-processing: no noise, no charge.
func (in *Ingester) mintWindow(ns *dphist.Namespace, strm string, n int) error {
	var members []dphist.Release
	for i := n - in.cfg.Window + 1; i <= n; i++ {
		if i < 1 {
			continue
		}
		if rel, _, ok := ns.Get(EpochName(strm, i)); ok {
			members = append(members, rel)
		}
	}
	window, err := dphist.ComposeSum(members...)
	if err != nil {
		return fmt.Errorf("window: %w", err)
	}
	if _, err := ns.Put(WindowName(strm), window); err != nil {
		return fmt.Errorf("window: %w", err)
	}
	return nil
}

// session returns (creating on first use) the namespace's budgeted mint
// session, charging the store's per-namespace accountant — durably when
// the store is durable.
func (in *Ingester) session(ns string) (*dphist.Session, error) {
	in.sessMu.Lock()
	defer in.sessMu.Unlock()
	if sess, ok := in.sessions[ns]; ok {
		return sess, nil
	}
	sess, err := in.cfg.Store.Namespace(ns).Session(in.cfg.Mechanism)
	if err != nil {
		return nil, err
	}
	in.sessions[ns] = sess
	return sess, nil
}

// Stats reports the cumulative counters.
func (in *Ingester) Stats() Stats {
	return Stats{
		Events:          in.events.Load(),
		Dropped:         in.dropped.Load(),
		Batches:         in.batches.Load(),
		Streams:         in.streams.Load(),
		Flushes:         in.flushes.Load(),
		EpochMints:      in.epochMints.Load(),
		MintFailures:    in.mintFailures.Load(),
		LiveCounters:    in.liveCounters.Load(),
		LiveExhausted:   in.liveExhausted.Load(),
		LastFlushMicros: in.lastFlushMicros.Load(),
	}
}

// Domain returns the configured buckets per stream.
func (in *Ingester) Domain() int { return in.cfg.Domain }

// Epoch returns the configured mint interval.
func (in *Ingester) Epoch() time.Duration { return in.cfg.Epoch }

// Window returns the sliding-window width (0 or 1 means disabled).
func (in *Ingester) Window() int { return in.cfg.Window }

// LiveEnabled reports whether the continual-count surface is configured.
func (in *Ingester) LiveEnabled() bool { return in.cfg.LiveEpsilon > 0 }

// Close stops the scheduler, mints a final epoch from whatever has
// accumulated (a partial epoch beats losing acknowledged events), and
// stops the workers. Close the ingester before closing a durable store,
// or the final mint fails with the store's ErrStoreClosed. Ingest and
// LiveCounts fail with ErrClosed afterwards; a second Close is a no-op.
func (in *Ingester) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	in.mu.Unlock()
	close(in.schedStop)
	<-in.schedDone
	in.flushMu.Lock()
	_, err := in.flushLocked()
	in.stopped = true
	for _, sh := range in.shards {
		close(sh.ch)
	}
	in.flushMu.Unlock()
	in.wg.Wait()
	return err
}
