package core

import (
	"math"
	"sort"
	"testing"

	"github.com/dphist/dphist/internal/isotonic"
	"github.com/dphist/dphist/internal/laplace"
)

// Fig 2(b): L(I) = <2, 0, 10, 2>, S(I) = <0, 2, 2, 10>.
func TestSortedQueryPaperExample(t *testing.T) {
	got := SortedQuery([]float64{2, 0, 10, 2})
	want := []float64{0, 2, 2, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("S(I) = %v, want %v", got, want)
		}
	}
}

func TestSortedQueryDoesNotModifyInput(t *testing.T) {
	in := []float64{3, 1, 2}
	SortedQuery(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input modified")
	}
}

func TestReleaseSortedAddsNoiseToSortedTruth(t *testing.T) {
	unit := []float64{5, 1, 9, 3}
	// Same stream: release minus identical noise recovers sorted truth.
	noisy := ReleaseSorted(unit, 1.0, laplace.Stream(3, 0))
	noise := Perturb(make([]float64, 4), SensitivityS, 1.0, laplace.Stream(3, 0))
	want := SortedQuery(unit)
	for i := range noisy {
		if math.Abs((noisy[i]-noise[i])-want[i]) > 1e-12 {
			t.Fatal("ReleaseSorted did not perturb the sorted truth")
		}
	}
}

func TestInferSortedIsIsotonicRegression(t *testing.T) {
	in := []float64{14, 9, 10, 15}
	got := InferSorted(in)
	want := isotonic.Regress(in)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("InferSorted disagrees with isotonic.Regress")
		}
	}
}

func TestSortRound(t *testing.T) {
	in := []float64{2.7, -1.2, 0.4}
	got := SortRound(in)
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("SortRound output unsorted: %v", got)
	}
	want := []float64{0, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortRound(%v) = %v, want %v", in, got, want)
		}
	}
	if in[0] != 2.7 {
		t.Fatal("input modified")
	}
}

func TestDistinctRuns(t *testing.T) {
	runs := DistinctRuns([]float64{0, 0, 0, 2, 2, 10})
	want := []int{3, 2, 1}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	if got := DistinctRuns(nil); len(got) != 0 {
		t.Fatal("empty sequence should have no runs")
	}
}

// Inference never hurts (Section 3.2 cites Hwang & Peddada): averaged over
// many trials, total squared error of S-bar stays at or below S~.
func TestInferenceNeverHurtsOnAverage(t *testing.T) {
	sequences := [][]float64{
		makeConstant(64, 10),
		makeRamp(64),
		makeSteps(64, 4),
	}
	const eps = 0.1
	const trials = 120
	for si, truth := range sequences {
		sorted := SortedQuery(truth)
		var errTilde, errBar float64
		for trial := 0; trial < trials; trial++ {
			src := laplace.Stream(uint64(1000+si), trial)
			stilde := Perturb(sorted, SensitivityS, eps, src)
			sbar := InferSorted(stilde)
			errTilde += isotonic.SquaredDistance(stilde, sorted)
			errBar += isotonic.SquaredDistance(sbar, sorted)
		}
		if errBar > errTilde*1.02 {
			t.Errorf("sequence %d: inference hurt: %v > %v", si, errBar/trials, errTilde/trials)
		}
	}
}

// Theorem 2's headline: on a constant sequence (d=1) the error of S-bar is
// polylogarithmic while S~ stays linear in n; at n=256 the gap must be
// large.
func TestConstantSequenceLargeGain(t *testing.T) {
	truth := makeConstant(256, 25)
	const eps, trials = 1.0, 60
	var errTilde, errBar float64
	for trial := 0; trial < trials; trial++ {
		src := laplace.Stream(2024, trial)
		stilde := Perturb(truth, SensitivityS, eps, src)
		errTilde += isotonic.SquaredDistance(stilde, truth)
		errBar += isotonic.SquaredDistance(InferSorted(stilde), truth)
	}
	if errBar*10 > errTilde {
		t.Fatalf("expected >=10x improvement on constant sequence: S~ %v vs S-bar %v",
			errTilde/trials, errBar/trials)
	}
}

func TestTheoreticalErrorSTildeMatchesEmpirical(t *testing.T) {
	const n, eps, trials = 128, 0.5, 400
	truth := makeSteps(n, 8)
	want := TheoreticalErrorSTilde(n, eps)
	var total float64
	for trial := 0; trial < trials; trial++ {
		stilde := Perturb(truth, SensitivityS, eps, laplace.Stream(7, trial))
		total += isotonic.SquaredDistance(stilde, truth)
	}
	got := total / trials
	if rel := math.Abs(got-want) / want; rel > 0.1 {
		t.Fatalf("empirical error(S~) = %v, theory %v", got, want)
	}
}

func makeConstant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func makeRamp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func makeSteps(n, steps int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i * steps / n) * 10)
	}
	return out
}
