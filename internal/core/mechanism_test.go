package core

import (
	"math"
	"testing"

	"github.com/dphist/dphist/internal/laplace"
)

func TestPerturbDeterministicPerStream(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	a := Perturb(truth, 1, 0.5, laplace.Stream(9, 0))
	b := Perturb(truth, 1, 0.5, laplace.Stream(9, 0))
	c := Perturb(truth, 1, 0.5, laplace.Stream(9, 1))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same stream, different outputs")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different trials produced identical noise")
	}
}

func TestPerturbDoesNotModifyInput(t *testing.T) {
	truth := []float64{5, 6}
	Perturb(truth, 1, 1, laplace.Stream(1, 1))
	if truth[0] != 5 || truth[1] != 6 {
		t.Fatal("input modified")
	}
}

func TestPerturbNoiseVariance(t *testing.T) {
	const eps, sens = 0.5, 2.0
	want := NoiseVariance(sens, eps) // 2*(4)^2 = 32
	if math.Abs(want-32) > 1e-12 {
		t.Fatalf("NoiseVariance = %v, want 32", want)
	}
	src := laplace.Stream(77, 0)
	truth := make([]float64, 200000)
	noisy := Perturb(truth, sens, eps, src)
	var sumSq float64
	for _, v := range noisy {
		sumSq += v * v
	}
	got := sumSq / float64(len(noisy))
	if rel := math.Abs(got-want) / want; rel > 0.03 {
		t.Fatalf("empirical variance %v, want %v", got, want)
	}
}

func TestNoiseScalePanics(t *testing.T) {
	cases := []struct{ sens, eps float64 }{
		{1, 0}, {1, -1}, {1, math.Inf(1)},
		{0, 1}, {-2, 1}, {math.Inf(1), 1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NoiseScale(%v,%v) did not panic", c.sens, c.eps)
				}
			}()
			NoiseScale(c.sens, c.eps)
		}()
	}
}

func TestRoundNonNegInt(t *testing.T) {
	in := []float64{-3.2, -0.4, -0.0, 0.49, 0.51, 2.5, 7}
	got := RoundNonNegInt(append([]float64(nil), in...))
	want := []float64{0, 0, 0, 0, 1, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoundNonNegInt(%v) = %v, want %v", in, got, want)
		}
		if math.Signbit(got[i]) {
			t.Fatalf("negative zero at %d", i)
		}
	}
}

func TestRoundNonNegIntInPlace(t *testing.T) {
	x := []float64{1.4}
	if got := RoundNonNegInt(x); &got[0] != &x[0] {
		t.Fatal("RoundNonNegInt did not round in place")
	}
}
