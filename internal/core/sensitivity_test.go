package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dphist/dphist/internal/htree"
)

// These tests verify the paper's sensitivity propositions directly: for
// random neighboring databases (one record added), the L1 distance
// between true query answers equals the claimed sensitivity. The Laplace
// mechanism's privacy guarantee rests entirely on these numbers.

func l1(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func randomCounts(n int, rng *rand.Rand) []float64 {
	counts := make([]float64, n)
	for i := range counts {
		// Skewed counts with duplicates: the interesting regime for S.
		counts[i] = float64(rng.IntN(6) * rng.IntN(4))
	}
	return counts
}

// Example 2: the sensitivity of L is 1.
func TestSensitivityLEmpirical(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(40)
		counts := randomCounts(n, rng)
		neighbor := append([]float64(nil), counts...)
		neighbor[rng.IntN(n)]++ // add one record
		if got := l1(counts, neighbor); got != SensitivityL {
			t.Fatalf("||L(I)-L(I')||_1 = %v, want 1", got)
		}
	}
}

// Proposition 3: the sensitivity of S is 1 — sorting does not amplify a
// one-record change, because the new record shifts exactly one rank.
func TestSensitivitySEmpirical(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 2))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.IntN(40)
		counts := randomCounts(n, rng)
		neighbor := append([]float64(nil), counts...)
		neighbor[rng.IntN(n)]++
		got := l1(SortedQuery(counts), SortedQuery(neighbor))
		if got != 1 {
			t.Fatalf("||S(I)-S(I')||_1 = %v, want 1 (I=%v)", got, counts)
		}
	}
}

// Proposition 4: the sensitivity of H equals the tree height ell — the
// added record changes exactly the counts on one leaf-to-root path.
func TestSensitivityHEmpirical(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 3))
	for _, k := range []int{2, 3, 4} {
		for trial := 0; trial < 100; trial++ {
			n := 2 + rng.IntN(60)
			tree := htree.MustNew(k, n)
			counts := randomCounts(n, rng)
			neighbor := append([]float64(nil), counts...)
			neighbor[rng.IntN(n)]++
			got := l1(tree.FromLeaves(counts), tree.FromLeaves(neighbor))
			if got != SensitivityH(tree) {
				t.Fatalf("k=%d n=%d: ||H(I)-H(I')||_1 = %v, want %v",
					k, n, got, SensitivityH(tree))
			}
		}
	}
}

// The introduction's claim: the grades query set has sensitivity 3, and
// one added student changes at most 3 answers by 1 each (exactly 3 when
// the student passes, 2 when the grade is F).
func TestSensitivityGradesEmpirical(t *testing.T) {
	h := GradesHierarchy()
	rng := rand.New(rand.NewPCG(100, 4))
	sawMax := false
	for trial := 0; trial < 200; trial++ {
		leaves := make([]float64, 5)
		for i := range leaves {
			leaves[i] = float64(rng.IntN(50))
		}
		neighbor := append([]float64(nil), leaves...)
		grade := rng.IntN(5)
		neighbor[grade]++
		got := l1(h.FromLeaves(leaves), h.FromLeaves(neighbor))
		want := 3.0
		if grade == 4 { // xF: path is xF -> xt only
			want = 2.0
		}
		if got != want {
			t.Fatalf("grade %d: L1 change %v, want %v", grade, got, want)
		}
		if got == h.Sensitivity() {
			sawMax = true
		}
	}
	if !sawMax {
		t.Fatal("never observed the worst case; sensitivity untested")
	}
}

// Correlated queries add up: repeating the same counting query q times
// has sensitivity q (the Section 2.1 remark). Modeled as a flat
// hierarchy where every "query" is the root's only child chain.
func TestSensitivityRepeatedQueryRemark(t *testing.T) {
	// Chain hierarchy: node i's parent is i-1; the single leaf is the
	// count itself, every ancestor repeats it.
	const q = 5
	parents := make([]int, q)
	parents[0] = -1
	for i := 1; i < q; i++ {
		parents[i] = i - 1
	}
	h := MustHierarchy(parents)
	if got := h.Sensitivity(); got != q {
		t.Fatalf("chain sensitivity %v, want %v", got, q)
	}
}
