package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
)

func TestNewHierarchyRejectsBadShapes(t *testing.T) {
	cases := map[string][]int{
		"empty":          {},
		"self-parent":    {0},
		"parent too big": {-1, 5},
		"parent -2":      {-2},
		"two-cycle":      {1, 0},
	}
	for name, parents := range cases {
		if _, err := NewHierarchy(parents); err == nil {
			t.Errorf("%s accepted: %v", name, parents)
		}
	}
}

func TestGradesHierarchyShape(t *testing.T) {
	h := GradesHierarchy()
	if h.Len() != 7 {
		t.Fatalf("len = %d, want 7", h.Len())
	}
	// Leaves are the five grade counts xA..xF at indices 2..6.
	leaves := h.Leaves()
	want := []int{2, 3, 4, 5, 6}
	if len(leaves) != len(want) {
		t.Fatalf("leaves = %v", leaves)
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("leaves = %v, want %v", leaves, want)
		}
	}
	// The introduction states this query set has sensitivity 3.
	if got := h.Sensitivity(); got != 3 {
		t.Fatalf("sensitivity = %v, want 3", got)
	}
}

func TestGradesFromLeaves(t *testing.T) {
	h := GradesHierarchy()
	// xA=10 xB=20 xC=5 xD=3 xF=2 -> xp=38, xt=40.
	got := h.FromLeaves([]float64{10, 20, 5, 3, 2})
	want := []float64{40, 38, 10, 20, 5, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FromLeaves = %v, want %v", got, want)
		}
	}
	if !h.IsConsistent(got, 0) {
		t.Fatal("true answers inconsistent")
	}
}

func TestHierarchyInferConsistentFixedPoint(t *testing.T) {
	h := GradesHierarchy()
	truth := h.FromLeaves([]float64{10, 20, 5, 3, 2})
	got, err := h.Infer(truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-9 {
			t.Fatal("consistent vector moved by inference")
		}
	}
}

func TestHierarchyInferProducesConsistentOutput(t *testing.T) {
	h := GradesHierarchy()
	rng := rand.New(rand.NewPCG(44, 9))
	noisy := make([]float64, h.Len())
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * 10
	}
	got, err := h.Infer(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsConsistent(got, 1e-8) {
		t.Fatalf("inferred answers inconsistent: %v", got)
	}
}

func TestHierarchyInferOptimality(t *testing.T) {
	h := GradesHierarchy()
	rng := rand.New(rand.NewPCG(5, 55))
	noisy := make([]float64, h.Len())
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * 10
	}
	sol, err := h.Infer(noisy)
	if err != nil {
		t.Fatal(err)
	}
	base := sqDist(noisy, sol)
	for cand := 0; cand < 200; cand++ {
		leaf := make([]float64, len(h.Leaves()))
		for i := range leaf {
			leaf[i] = rng.NormFloat64() * 10
		}
		c := h.FromLeaves(leaf)
		if d := sqDist(noisy, c); d < base-1e-9 {
			t.Fatalf("candidate beats projection: %v < %v", d, base)
		}
	}
}

func TestHierarchyInferLengthMismatch(t *testing.T) {
	if _, err := GradesHierarchy().Infer(make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// A complete binary tree expressed as a Hierarchy must agree with
// InferTree — two completely different code paths for the same
// projection (OLS vs Theorem 3).
func TestHierarchyMatchesInferTree(t *testing.T) {
	tr := htree.MustNew(2, 8)
	parents := make([]int, tr.NumNodes())
	parents[0] = -1
	for v := 1; v < tr.NumNodes(); v++ {
		parents[v] = tr.Parent(v)
	}
	h := MustHierarchy(parents)
	rng := rand.New(rand.NewPCG(66, 3))
	noisy := make([]float64, tr.NumNodes())
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * 8
	}
	viaOLS, err := h.Infer(noisy)
	if err != nil {
		t.Fatal(err)
	}
	viaThm3 := InferTree(tr, noisy)
	for i := range viaOLS {
		if math.Abs(viaOLS[i]-viaThm3[i]) > 1e-7 {
			t.Fatalf("node %d: OLS %v != Theorem 3 %v", i, viaOLS[i], viaThm3[i])
		}
	}
}

// The introduction's scenario, measured quantitatively. Issuing the
// constrained 7-query set (sensitivity 3) and inferring combines three
// independent estimates of the total; the OLS variance for the root works
// out to (9/14)*sigma^2 with sigma^2 = 2*(3/eps)^2 — a 36% cut versus the
// raw noisy xt at the same privacy level. (For this tiny 5-bin domain the
// low-sensitivity alternative of summing the grade counts is still better
// for the total, which is exactly the trade-off Section 4.2 describes;
// the hierarchy only pays off as domains grow.)
func TestGradesTotalMatchesOLSTheory(t *testing.T) {
	h := GradesHierarchy()
	leafTruth := []float64{120, 180, 90, 40, 25}
	truth := h.FromLeaves(leafTruth)
	const eps, trials = 0.5, 2000
	var errRaw, errInfer float64
	for trial := 0; trial < trials; trial++ {
		noisy := Perturb(truth, h.Sensitivity(), eps, laplace.Stream(91337, trial))
		inferred, err := h.Infer(noisy)
		if err != nil {
			t.Fatal(err)
		}
		errRaw += (noisy[0] - truth[0]) * (noisy[0] - truth[0])
		errInfer += (inferred[0] - truth[0]) * (inferred[0] - truth[0])
	}
	sigma2 := NoiseVariance(h.Sensitivity(), eps)
	wantInfer := 9.0 / 14.0 * sigma2
	gotInfer := errInfer / trials
	if rel := math.Abs(gotInfer-wantInfer) / wantInfer; rel > 0.15 {
		t.Fatalf("inferred total error %v, OLS theory %v", gotInfer, wantInfer)
	}
	if gotRaw := errRaw / trials; gotInfer >= gotRaw {
		t.Fatalf("inference did not improve the raw total: %v >= %v", gotInfer, gotRaw)
	}
}
