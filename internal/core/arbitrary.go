package core

import (
	"fmt"

	"github.com/dphist/dphist/internal/linalg"
)

// Hierarchy is an arbitrary constraint forest over a query sequence: node
// i's true answer equals the sum of its children's true answers. This
// generalizes the complete k-ary tree of Section 4 to irregular shapes
// such as the student-grades example of the introduction, where
// xt = xp + xF and xp = xA + xB + xC + xD.
//
// Inference on a Hierarchy solves the least-squares problem explicitly
// via the normal equations (O(leaves^3)), so it is intended for small,
// hand-built query sets; use htree + InferTree for large domains.
type Hierarchy struct {
	parent   []int
	children [][]int
	leaves   []int // indices of nodes without children, ascending
}

// NewHierarchy builds a Hierarchy from parent pointers: parent[i] is the
// index of node i's parent, or -1 for a root. The structure must be a
// forest: parents must be valid indices and acyclic.
func NewHierarchy(parent []int) (*Hierarchy, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("core: empty hierarchy")
	}
	children := make([][]int, n)
	for i, p := range parent {
		if p == i || p < -1 || p >= n {
			return nil, fmt.Errorf("core: node %d has invalid parent %d", i, p)
		}
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	// Cycle check: walking up from every node must terminate.
	for i := range parent {
		seen := 0
		for v := i; v != -1; v = parent[v] {
			seen++
			if seen > n {
				return nil, fmt.Errorf("core: cycle through node %d", i)
			}
		}
	}
	h := &Hierarchy{parent: parent, children: children}
	for i := range parent {
		if len(children[i]) == 0 {
			h.leaves = append(h.leaves, i)
		}
	}
	return h, nil
}

// MustHierarchy is NewHierarchy but panics on error.
func MustHierarchy(parent []int) *Hierarchy {
	h, err := NewHierarchy(parent)
	if err != nil {
		panic(err)
	}
	return h
}

// Len returns the number of queries (nodes) in the hierarchy.
func (h *Hierarchy) Len() int { return len(h.parent) }

// Leaves returns the indices of the leaf queries in ascending order. The
// returned slice is shared; callers must not modify it.
func (h *Hierarchy) Leaves() []int { return h.leaves }

// Parents returns the parent-pointer representation the hierarchy was
// built from (parent[i] is node i's parent, or -1 for a root). The
// returned slice is shared; callers must not modify it.
func (h *Hierarchy) Parents() []int { return h.parent }

// Sensitivity returns the L1 sensitivity of the query sequence: a record
// contributes to exactly one leaf, changing that leaf and all of its
// ancestors by one, so the sensitivity is the longest leaf-to-root path
// measured in nodes. For the grades example this is 3, matching the
// introduction.
func (h *Hierarchy) Sensitivity() float64 {
	maxDepth := 0
	for _, leaf := range h.leaves {
		d := 0
		for v := leaf; v != -1; v = h.parent[v] {
			d++
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	return float64(maxDepth)
}

// FromLeaves builds the full true answer vector from the values of the
// leaf queries, given in the order reported by Leaves. Internal answers
// are sums over their subtrees.
func (h *Hierarchy) FromLeaves(leafValues []float64) []float64 {
	if len(leafValues) != len(h.leaves) {
		panic(fmt.Sprintf("core: %d leaf values for %d leaves", len(leafValues), len(h.leaves)))
	}
	out := make([]float64, h.Len())
	for i, leaf := range h.leaves {
		for v := leaf; v != -1; v = h.parent[v] {
			out[v] += leafValues[i]
		}
	}
	return out
}

// DesignMatrix returns the 0/1 matrix A with one row per query and one
// column per leaf, where A[v][j] = 1 iff leaf j lies in v's subtree; the
// true answers satisfy q = A * leafValues.
func (h *Hierarchy) DesignMatrix() *linalg.Matrix {
	a := linalg.NewMatrix(h.Len(), len(h.leaves))
	for j, leaf := range h.leaves {
		for v := leaf; v != -1; v = h.parent[v] {
			a.Set(v, j, 1)
		}
	}
	return a
}

// Infer returns the minimum-L2 vector consistent with the hierarchy
// constraints, i.e. the ordinary-least-squares fit of the leaf unknowns
// to the noisy answers followed by re-aggregation. Pure post-processing.
func (h *Hierarchy) Infer(noisy []float64) ([]float64, error) {
	if len(noisy) != h.Len() {
		return nil, fmt.Errorf("core: %d noisy answers for %d queries", len(noisy), h.Len())
	}
	a := h.DesignMatrix()
	leafFit, err := linalg.LeastSquares(a, noisy)
	if err != nil {
		return nil, fmt.Errorf("core: hierarchy inference: %w", err)
	}
	return a.MulVec(leafFit), nil
}

// IsConsistent reports whether every internal answer equals the sum of
// its children up to tol.
func (h *Hierarchy) IsConsistent(values []float64, tol float64) bool {
	if len(values) != h.Len() {
		return false
	}
	for v, kids := range h.children {
		if len(kids) == 0 {
			continue
		}
		sum := 0.0
		for _, c := range kids {
			sum += values[c]
		}
		if diff := values[v] - sum; diff > tol || diff < -tol {
			return false
		}
	}
	return true
}

// GradesHierarchy returns the introduction's student-grades query set
// (xt, xp, xA, xB, xC, xD, xF): the total, the passing count, and the five
// letter-grade counts, with constraints xt = xp + xF, xp = xA+xB+xC+xD.
// Index order matches the paper's presentation.
func GradesHierarchy() *Hierarchy {
	// 0:xt 1:xp 2:xA 3:xB 4:xC 5:xD 6:xF
	return MustHierarchy([]int{-1, 0, 1, 1, 1, 1, 0})
}
