package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
	"github.com/dphist/dphist/internal/linalg"
)

// Fig 2(b) end to end: the paper lists the noisy tree
// H~(I) = <13, 3, 11, 4, 1, 12, 1> and the inferred answer
// H(I)-bar = <14, 3, 11, 3, 0, 11, 0>.
func TestPaperFig2InferredAnswer(t *testing.T) {
	tr := htree.MustNew(2, 4)
	htilde := []float64{13, 3, 11, 4, 1, 12, 1}
	got := InferTree(tr, htilde)
	want := []float64{14, 3, 11, 3, 0, 11, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("InferTree = %v, want %v", got, want)
		}
	}
}

func TestSensitivityH(t *testing.T) {
	if got := SensitivityH(htree.MustNew(2, 4)); got != 3 {
		t.Errorf("sensitivity = %v, want 3 (Fig 4 tree)", got)
	}
	if got := SensitivityH(htree.MustNew(2, 1<<15)); got != 16 {
		t.Errorf("sensitivity = %v, want 16 (height-16 tree)", got)
	}
}

func TestInferTreeConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 34))
	for _, k := range []int{2, 3, 5} {
		tr := htree.MustNew(k, 40)
		noisy := make([]float64, tr.NumNodes())
		for i := range noisy {
			noisy[i] = rng.NormFloat64() * 20
		}
		h := InferTree(tr, noisy)
		if !tr.IsConsistent(h, 1e-6) {
			t.Fatalf("k=%d inferred tree inconsistent", k)
		}
	}
}

func TestInferTreeIdempotentOnConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 14))
	tr := htree.MustNew(2, 16)
	unit := make([]float64, 16)
	for i := range unit {
		unit[i] = rng.Float64() * 10
	}
	truth := tr.FromLeaves(unit)
	got := InferTree(tr, truth)
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-9 {
			t.Fatalf("projection moved a consistent vector at node %d", i)
		}
	}
}

// Theorem 3 must agree with explicit ordinary least squares on the leaf
// unknowns (the linear-regression view of Section 4.1).
func TestInferTreeMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for _, cfg := range []struct{ k, domain int }{{2, 4}, {2, 8}, {2, 16}, {3, 9}, {3, 27}, {4, 16}} {
		tr := htree.MustNew(cfg.k, cfg.domain)
		noisy := make([]float64, tr.NumNodes())
		for i := range noisy {
			noisy[i] = rng.NormFloat64() * 10
		}
		fast := InferTree(tr, noisy)
		a := TreeDesignMatrix(tr)
		leafFit, err := linalg.LeastSquares(a, noisy)
		if err != nil {
			t.Fatal(err)
		}
		slow := a.MulVec(leafFit)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-6 {
				t.Fatalf("k=%d n=%d: Theorem 3 %v != OLS %v at node %d",
					cfg.k, cfg.domain, fast[i], slow[i], i)
			}
		}
	}
}

func TestInferTreeLinearity(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	tr := htree.MustNew(2, 8)
	x := make([]float64, tr.NumNodes())
	y := make([]float64, tr.NumNodes())
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	const a, b = 2.5, -1.25
	combo := make([]float64, len(x))
	for i := range x {
		combo[i] = a*x[i] + b*y[i]
	}
	hx, hy, hc := InferTree(tr, x), InferTree(tr, y), InferTree(tr, combo)
	for i := range hc {
		if math.Abs(hc[i]-(a*hx[i]+b*hy[i])) > 1e-9 {
			t.Fatal("InferTree is not linear")
		}
	}
}

// The projection must be at least as close to the noisy vector as any
// other consistent vector (minimum-L2 property).
func TestInferTreeOptimality(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	tr := htree.MustNew(2, 8)
	noisy := make([]float64, tr.NumNodes())
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * 5
	}
	h := InferTree(tr, noisy)
	base := sqDist(noisy, h)
	for cand := 0; cand < 200; cand++ {
		unit := make([]float64, 8)
		for i := range unit {
			unit[i] = rng.NormFloat64() * 5
		}
		c := tr.FromLeaves(unit)
		if d := sqDist(noisy, c); d < base-1e-9 {
			t.Fatalf("consistent candidate closer than projection: %v < %v", d, base)
		}
	}
}

// Theorem 4(i): H-bar is unbiased. Averaging inferred trees over many
// releases must converge on the truth.
func TestInferTreeUnbiased(t *testing.T) {
	tr := htree.MustNew(2, 8)
	unit := []float64{5, 0, 0, 12, 3, 3, 0, 7}
	truth := tr.FromLeaves(unit)
	const eps, trials = 1.0, 3000
	mean := make([]float64, tr.NumNodes())
	for trial := 0; trial < trials; trial++ {
		htilde := ReleaseTree(tr, unit, eps, laplace.Stream(555, trial))
		for i, v := range InferTree(tr, htilde) {
			mean[i] += v
		}
	}
	scale := NoiseScale(SensitivityH(tr), eps)
	for i := range mean {
		mean[i] /= trials
		// Standard error of the mean of Laplace-driven estimates is at
		// most scale*sqrt(2/trials) per node; allow 5 sigma.
		tol := 5 * scale * math.Sqrt(2/float64(trials))
		if math.Abs(mean[i]-truth[i]) > tol {
			t.Fatalf("node %d biased: mean %v, truth %v (tol %v)", i, mean[i], truth[i], tol)
		}
	}
}

// Root accuracy: the root of H-bar averages all levels and must beat the
// raw noisy root variance 2(ell/eps)^2 by a visible margin.
func TestInferTreeReducesRootVariance(t *testing.T) {
	tr := htree.MustNew(2, 64) // height 7
	unit := make([]float64, 64)
	const eps, trials = 1.0, 800
	var rawSq, infSq float64
	truthRoot := 0.0
	for trial := 0; trial < trials; trial++ {
		htilde := ReleaseTree(tr, unit, eps, laplace.Stream(888, trial))
		h := InferTree(tr, htilde)
		rawSq += (htilde[0] - truthRoot) * (htilde[0] - truthRoot)
		infSq += (h[0] - truthRoot) * (h[0] - truthRoot)
	}
	if infSq >= rawSq*0.8 {
		t.Fatalf("root variance not reduced: inferred %v vs raw %v", infSq/trials, rawSq/trials)
	}
}

func TestInferTreePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	InferTree(htree.MustNew(2, 4), make([]float64, 6))
}

func TestZeroNegativeSubtrees(t *testing.T) {
	tr := htree.MustNew(2, 4)
	// Node 1 (covering leaves 0-1) is negative: its whole subtree zeroes.
	counts := []float64{10, -2, 12, 3, -5, 7, 5}
	got := ZeroNegativeSubtrees(tr, append([]float64(nil), counts...))
	want := []float64{10, 0, 12, 0, 0, 7, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ZeroNegativeSubtrees = %v, want %v", got, want)
		}
	}
}

func TestZeroNegativeSubtreesRoot(t *testing.T) {
	tr := htree.MustNew(2, 4)
	counts := []float64{-1, 5, 5, 2, 3, 2, 3}
	got := ZeroNegativeSubtrees(tr, counts)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("node %d = %v after zeroing negative root", i, v)
		}
	}
}

func TestTreeRangeHTilde(t *testing.T) {
	tr := htree.MustNew(2, 8)
	unit := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	counts := tr.FromLeaves(unit)
	if got := TreeRangeHTilde(tr, counts, 2, 7); got != 3+4+5+6+7 {
		t.Fatalf("range sum = %v, want 25", got)
	}
}

func TestTheoreticalErrorHTildeRange(t *testing.T) {
	tr := htree.MustNew(2, 1<<15) // ell = 16
	got := TheoreticalErrorHTildeRange(tr, 1.0, 4)
	want := 4 * 2 * 16.0 * 16.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Statistical check of Theorem 4(iv)'s setup: for the all-but-endpoints
// query on a modest tree, H-bar is substantially more accurate than H~.
func TestTheorem4QueryImprovement(t *testing.T) {
	tr := htree.MustNew(2, 64) // ell = 7
	unit := make([]float64, 64)
	for i := range unit {
		unit[i] = 10
	}
	truth := 10.0 * 62
	const eps, trials = 1.0, 500
	var errTilde, errBar float64
	for trial := 0; trial < trials; trial++ {
		htilde := ReleaseTree(tr, unit, eps, laplace.Stream(4242, trial))
		h := InferTree(tr, htilde)
		at := TreeRangeHTilde(tr, htilde, 1, 63)
		ab := TreeRangeHTilde(tr, h, 1, 63)
		errTilde += (at - truth) * (at - truth)
		errBar += (ab - truth) * (ab - truth)
	}
	// Theory predicts a factor 2(ell-1)(k-1)-k)/3 = 10/3 ~ 3.3 at ell=7,k=2;
	// require at least 2x to keep the test robust.
	if errBar*2 > errTilde {
		t.Fatalf("expected >=2x improvement: H~ %v vs H-bar %v", errTilde/trials, errBar/trials)
	}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
