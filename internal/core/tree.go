package core

import (
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/linalg"
)

// SensitivityH returns the L1 sensitivity of the hierarchical query H on
// the given tree: the height ell, since one record changes exactly the
// counts on the leaf-to-root path (Proposition 4).
func SensitivityH(t *htree.Tree) float64 {
	return float64(t.Height())
}

// ReleaseTree answers the hierarchical query sequence H under
// eps-differential privacy: h~ = H(I) + Lap(ell/eps)^m, where m is the
// number of nodes (Propositions 1 and 4). unit holds the true unit-length
// counts of the real domain; padding leaves count zero.
func ReleaseTree(t *htree.Tree, unit []float64, eps float64, src *rand.Rand) []float64 {
	return Perturb(t.FromLeaves(unit), SensitivityH(t), eps, src)
}

// InferTree computes H-bar, the minimum-L2 solution satisfying the
// parent-equals-sum-of-children constraints gammaH given the noisy tree
// h~ (Theorem 3). Two linear passes:
//
//  1. Bottom-up: z[v] is the variance-optimal weighted average of the
//     node's own noisy count and the sum of its children's z-estimates,
//     with weights (k^l - k^(l-1))/(k^l - 1) and (k^(l-1) - 1)/(k^l - 1)
//     for a node of height l (leaves have height 1 and z = h~).
//  2. Top-down: h[root] = z[root]; descending, each child receives an
//     equal 1/k share of the parent's residual h[u] - sum(z[children]).
//
// The result is exactly consistent and is the ordinary-least-squares
// estimate of the leaf counts (Theorem 4 via Gauss-Markov). The input is
// not modified.
func InferTree(t *htree.Tree, htilde []float64) []float64 {
	if len(htilde) != t.NumNodes() {
		panic("core: noisy tree length does not match tree shape")
	}
	k := float64(t.K())
	z := make([]float64, t.NumNodes())
	// Bottom-up pass. BFS layout means iterating indices in reverse
	// visits every child before its parent.
	leafStart := t.LeafStart()
	copy(z[leafStart:], htilde[leafStart:])
	// Precompute per-depth weights: all nodes at one depth share a height.
	alpha := make([]float64, t.Height()+1) // indexed by paper height l
	for l := 2; l <= t.Height(); l++ {
		kl := math.Pow(k, float64(l))
		klm1 := math.Pow(k, float64(l-1))
		alpha[l] = (kl - klm1) / (kl - 1)
	}
	for v := leafStart - 1; v >= 0; v-- {
		lo, hi := t.Children(v)
		sum := 0.0
		for c := lo; c < hi; c++ {
			sum += z[c]
		}
		a := alpha[t.HeightOf(v)]
		z[v] = a*htilde[v] + (1-a)*sum
	}
	// Top-down pass.
	h := make([]float64, t.NumNodes())
	h[0] = z[0]
	for v := 0; v < leafStart; v++ {
		lo, hi := t.Children(v)
		sum := 0.0
		for c := lo; c < hi; c++ {
			sum += z[c]
		}
		share := (h[v] - sum) / k
		for c := lo; c < hi; c++ {
			h[c] = z[c] + share
		}
	}
	return h
}

// ZeroNegativeSubtrees applies the Section 4.2 sparsity heuristic in
// place: walking from the root, any subtree whose root estimate is <= 0
// has all of its counts (the root and every descendant) set to zero. On
// sparse domains this removes most of the noise mass in empty regions.
// Returns its argument.
func ZeroNegativeSubtrees(t *htree.Tree, counts []float64) []float64 {
	if len(counts) != t.NumNodes() {
		panic("core: count vector length does not match tree shape")
	}
	zero := make([]bool, t.NumNodes())
	for v := 0; v < t.NumNodes(); v++ {
		if v > 0 && zero[t.Parent(v)] {
			zero[v] = true
		} else if counts[v] <= 0 {
			zero[v] = true
		}
		if zero[v] {
			counts[v] = 0
		}
	}
	return counts
}

// TreeRangeHTilde answers range [lo, hi) from the plain noisy tree h~ by
// summing the minimal subtree decomposition — the paper's H~ strategy.
func TreeRangeHTilde(t *htree.Tree, htilde []float64, lo, hi int) float64 {
	return t.RangeSum(htilde, lo, hi)
}

// TheoreticalErrorHTildeRange bounds the expected squared error of the H~
// strategy for a range answered from c subtrees: c * 2*(ell/eps)^2.
func TheoreticalErrorHTildeRange(t *htree.Tree, eps float64, subtrees int) float64 {
	return float64(subtrees) * NoiseVariance(SensitivityH(t), eps)
}

// TreeDesignMatrix returns the design matrix A of the linear-regression
// view of Section 4.1: row v has ones over the leaves in v's subtree, so
// H(I) = A * (leaf counts). Tests use it to verify InferTree against
// explicit ordinary least squares. Only sensible for small trees (the
// matrix is NumNodes x NumLeaves).
func TreeDesignMatrix(t *htree.Tree) *linalg.Matrix {
	a := linalg.NewMatrix(t.NumNodes(), t.NumLeaves())
	for v := 0; v < t.NumNodes(); v++ {
		lo, hi := t.Interval(v)
		for j := lo; j < hi; j++ {
			a.Set(v, j, 1)
		}
	}
	return a
}
