// Package core implements the paper's primary contribution: differentially
// private query sequences for histograms together with constrained
// inference, the post-processing step that projects noisy answers onto
// their consistency constraints (Hay, Rastogi, Miklau, Suciu: "Boosting
// the Accuracy of Differentially Private Histograms Through Consistency",
// PVLDB 2010).
//
// Three query sequences are provided, mirroring the paper's notation:
//
//   - L: unit-length counts (the conventional histogram), sensitivity 1.
//   - S: the counts of L in sorted order, sensitivity 1 (Proposition 3);
//     constrained inference is isotonic regression (Theorem 1).
//   - H: hierarchical interval counts over a k-ary tree, sensitivity ell,
//     the tree height (Proposition 4); constrained inference is the
//     two-pass closed form of Theorem 3.
//
// All releases are epsilon-differentially private via the Laplace
// mechanism (Proposition 1); inference is pure post-processing and incurs
// no privacy cost (Proposition 2).
package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dphist/dphist/internal/laplace"
)

// Perturb returns truth + Lap(sensitivity/eps)^n, the Laplace-mechanism
// release of a query sequence with the given L1 sensitivity (Proposition
// 1). The input is not modified. It panics if eps or sensitivity is not
// strictly positive and finite.
func Perturb(truth []float64, sensitivity, eps float64, src *rand.Rand) []float64 {
	scale := NoiseScale(sensitivity, eps)
	d := laplace.New(0, scale)
	out := make([]float64, len(truth))
	for i, v := range truth {
		out[i] = v + d.Rand(src)
	}
	return out
}

// NoiseScale returns the Laplace scale parameter sensitivity/eps used by
// the mechanism, validating both arguments.
func NoiseScale(sensitivity, eps float64) float64 {
	if !(eps > 0) || math.IsInf(eps, 0) {
		panic(fmt.Sprintf("core: epsilon must be positive and finite, got %v", eps))
	}
	if !(sensitivity > 0) || math.IsInf(sensitivity, 0) {
		panic(fmt.Sprintf("core: sensitivity must be positive and finite, got %v", sensitivity))
	}
	return sensitivity / eps
}

// NoiseVariance returns the per-answer noise variance 2*(sensitivity/eps)^2
// of the Laplace mechanism, the building block of every error expression
// in the paper.
func NoiseVariance(sensitivity, eps float64) float64 {
	s := NoiseScale(sensitivity, eps)
	return 2 * s * s
}

// RoundNonNegInt rounds every entry to the nearest non-negative integer,
// in place, returning its argument. Section 5 applies this to all
// estimators before measuring error ("we enforce integrality and
// non-negativity by rounding to the nearest non-negative integer").
func RoundNonNegInt(x []float64) []float64 {
	for i, v := range x {
		v = math.Round(v)
		if v < 0 || math.Signbit(v) { // clears -0 as well
			v = 0
		}
		x[i] = v
	}
	return x
}
