package core

import (
	"math"
	"testing"

	"github.com/dphist/dphist/internal/htree"
	"github.com/dphist/dphist/internal/laplace"
)

// Deep trees stress the bottom-up weight recurrence: the alpha weights
// approach (k-1)/k and must stay numerically sane, and the result must
// remain exactly consistent after 21 levels of accumulation.
func TestInferTreeDeepBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("2M-node tree")
	}
	tr := htree.MustNew(2, 1<<20) // height 21, ~2M nodes
	unit := make([]float64, 1<<20)
	for i := range unit {
		unit[i] = float64(i % 3)
	}
	noisy := ReleaseTree(tr, unit, 0.1, laplace.Stream(123, 0))
	h := InferTree(tr, noisy)
	for _, v := range h {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite value in deep inference")
		}
	}
	if !tr.IsConsistent(h, 1e-5) {
		t.Fatal("deep inferred tree inconsistent")
	}
	// Root variance sanity: the inferred root must be closer to the true
	// total than ten raw noise scales.
	truth := tr.FromLeaves(unit)
	scale := NoiseScale(SensitivityH(tr), 0.1)
	if math.Abs(h[0]-truth[0]) > 10*scale {
		t.Fatalf("deep root estimate off by %v (scale %v)", h[0]-truth[0], scale)
	}
}

// Wide flat trees (large k) exercise the other extreme of the weight
// table.
func TestInferTreeWideFanout(t *testing.T) {
	tr := htree.MustNew(64, 64*64) // height 3
	unit := make([]float64, 64*64)
	for i := range unit {
		unit[i] = 1
	}
	noisy := ReleaseTree(tr, unit, 1.0, laplace.Stream(124, 0))
	h := InferTree(tr, noisy)
	if !tr.IsConsistent(h, 1e-6) {
		t.Fatal("wide inferred tree inconsistent")
	}
}

// Extreme counts must not overflow the two-pass arithmetic.
func TestInferTreeLargeMagnitudes(t *testing.T) {
	tr := htree.MustNew(2, 64)
	unit := make([]float64, 64)
	for i := range unit {
		unit[i] = 1e12
	}
	noisy := ReleaseTree(tr, unit, 1.0, laplace.Stream(125, 0))
	h := InferTree(tr, noisy)
	if !tr.IsConsistent(h, 1e-2) {
		t.Fatal("large-magnitude inference inconsistent")
	}
	if math.Abs(h[0]-64e12) > 1e9 {
		t.Fatalf("root %v far from 6.4e13", h[0])
	}
}
