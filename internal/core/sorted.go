package core

import (
	"math/rand/v2"
	"sort"

	"github.com/dphist/dphist/internal/isotonic"
)

// Sensitivities of the paper's query sequences. L changes one count by one
// when a record is added or removed (Example 2); S keeps sensitivity 1
// because sorting happens before perturbation and an added record shifts
// exactly one rank position (Proposition 3).
const (
	SensitivityL = 1.0
	SensitivityS = 1.0
)

// SortedQuery evaluates S(I): the unit-length counts of the histogram in
// non-decreasing order. The input is not modified.
func SortedQuery(unit []float64) []float64 {
	s := append([]float64(nil), unit...)
	sort.Float64s(s)
	return s
}

// ReleaseL answers the conventional query sequence L under
// eps-differential privacy: l~ = L(I) + Lap(1/eps)^n.
func ReleaseL(unit []float64, eps float64, src *rand.Rand) []float64 {
	return Perturb(unit, SensitivityL, eps, src)
}

// ReleaseSorted answers the sorted query sequence S under
// eps-differential privacy: s~ = S(I) + Lap(1/eps)^n. The returned noisy
// answer is generally out of order; the true rank order is known to hold
// before noise, which is exactly the constraint InferSorted exploits.
func ReleaseSorted(unit []float64, eps float64, src *rand.Rand) []float64 {
	return Perturb(SortedQuery(unit), SensitivityS, eps, src)
}

// InferSorted computes S-bar: the minimum-L2 vector satisfying the order
// constraints gammaS given the noisy answer s~ (Theorem 1). This is
// isotonic regression, computed in linear time by PAVA. Pure
// post-processing: no privacy cost (Proposition 2).
func InferSorted(stilde []float64) []float64 {
	return isotonic.Regress(stilde)
}

// SortRound computes the S~r baseline of Section 5.1: enforce consistency
// naively by sorting the noisy answer and rounding each count to the
// nearest non-negative integer. The input is not modified.
func SortRound(stilde []float64) []float64 {
	s := append([]float64(nil), stilde...)
	sort.Float64s(s)
	return RoundNonNegInt(s)
}

// TheoreticalErrorSTilde returns error(S~) = 2n/eps^2 (Theorem 2
// discussion): the total expected squared error of the plain noisy sorted
// query over n positions.
func TheoreticalErrorSTilde(n int, eps float64) float64 {
	return float64(n) * NoiseVariance(SensitivityS, eps)
}

// DistinctRuns returns the multiplicities n_1..n_d of the d distinct
// values in the sorted sequence s, the quantity driving Theorem 2's bound
// error(S-bar) <= sum_i (c1 log^3 n_i + c2)/eps^2.
func DistinctRuns(sorted []float64) []int {
	var runs []int
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		runs = append(runs, j-i)
		i = j
	}
	return runs
}
