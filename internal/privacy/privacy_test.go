package privacy

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestNewAccountantPanics(t *testing.T) {
	for _, total := range []float64{0, -1, math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAccountant(%v) did not panic", total)
				}
			}()
			NewAccountant(total)
		}()
	}
}

func TestSpendAndRemaining(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend("first", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("second", 0.6); err != nil {
		t.Fatal(err)
	}
	if got := a.Remaining(); got > 1e-12 {
		t.Fatalf("remaining = %v, want 0", got)
	}
	if got := a.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("spent = %v", got)
	}
	if err := a.Spend("over", 0.01); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraw error = %v", err)
	}
}

func TestSpendRejectsBadEpsilon(t *testing.T) {
	a := NewAccountant(1)
	for _, eps := range []float64{0, -0.5, math.Inf(1), math.NaN()} {
		if err := a.Spend("bad", eps); err == nil {
			t.Errorf("Spend(%v) accepted", eps)
		}
	}
	if a.Spent() != 0 {
		t.Fatal("failed spends were recorded")
	}
}

func TestExactSplitDoesNotOverdraw(t *testing.T) {
	a := NewAccountant(1.0)
	for i, share := range Split(1.0, 3) {
		if err := a.Spend("share", share); err != nil {
			t.Fatalf("installment %d failed: %v", i, err)
		}
	}
}

func TestLogOrderAndCopy(t *testing.T) {
	a := NewAccountant(2)
	_ = a.Spend("x", 0.5)
	_ = a.Spend("y", 0.25)
	log := a.Log()
	if len(log) != 2 || log[0].Label != "x" || log[1].Label != "y" {
		t.Fatalf("log = %v", log)
	}
	log[0].Label = "mutated"
	if a.Log()[0].Label != "x" {
		t.Fatal("Log returned aliasing slice")
	}
}

func TestConcurrentSpends(t *testing.T) {
	a := NewAccountant(100)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Spend("c", 1)
		}()
	}
	wg.Wait()
	if got := a.Spent(); got != 64 {
		t.Fatalf("spent = %v, want 64", got)
	}
}

func TestSplit(t *testing.T) {
	shares := Split(0.9, 3)
	if len(shares) != 3 {
		t.Fatal("wrong share count")
	}
	for _, s := range shares {
		if math.Abs(s-0.3) > 1e-12 {
			t.Fatalf("share = %v, want 0.3", s)
		}
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(_, 0) did not panic")
		}
	}()
	Split(1, 0)
}
