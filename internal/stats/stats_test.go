package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSquaredError(t *testing.T) {
	if got := SquaredError([]float64{1, 2, 3}, []float64{1, 4, 0}); got != 13 {
		t.Fatalf("SquaredError = %v, want 13", got)
	}
	if got := SquaredError(nil, nil); got != 0 {
		t.Fatalf("empty SquaredError = %v", got)
	}
}

func TestSquaredErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatch")
		}
	}()
	SquaredError([]float64{1}, []float64{1, 2})
}

func TestMeanSquaredError(t *testing.T) {
	if got := MeanSquaredError([]float64{0, 0}, []float64{3, 4}); got != 12.5 {
		t.Fatalf("MSE = %v, want 12.5", got)
	}
}

func TestAbsoluteError(t *testing.T) {
	if got := AbsoluteError([]float64{1, -2}, []float64{-1, 2}); got != 6 {
		t.Fatalf("AbsoluteError = %v, want 6", got)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(x); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{3, 1, 2, 4}
	if got := Quantile(x, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(x, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(x, 0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	// Input untouched.
	if x[0] != 3 {
		t.Error("Quantile sorted the input in place")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile q=%v did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 2))
	xs := make([]float64, 1000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		acc.Add(xs[i])
	}
	if acc.N() != len(xs) {
		t.Fatal("N wrong")
	}
	if math.Abs(acc.Mean()-Mean(xs)) > 1e-10 {
		t.Fatalf("running mean %v != batch %v", acc.Mean(), Mean(xs))
	}
	if math.Abs(acc.Variance()-Variance(xs)) > 1e-9 {
		t.Fatalf("running variance %v != batch %v", acc.Variance(), Variance(xs))
	}
	if acc.StdErr() <= 0 {
		t.Fatal("stderr not positive")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.Variance() != 0 || acc.StdErr() != 0 {
		t.Fatal("empty accumulator not zeroed")
	}
}

func TestVectorAccumulator(t *testing.T) {
	va := NewVectorAccumulator(3)
	va.Add([]float64{1, 2, 3})
	va.Add([]float64{3, 2, 1})
	means := va.Means()
	want := []float64{2, 2, 2}
	for i := range want {
		if math.Abs(means[i]-want[i]) > 1e-12 {
			t.Fatalf("means = %v, want %v", means, want)
		}
	}
	if va.N() != 2 {
		t.Fatal("N wrong")
	}
	// Means returns a copy.
	means[0] = 99
	if va.Means()[0] == 99 {
		t.Fatal("Means aliases internal state")
	}
}

func TestVectorAccumulatorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewVectorAccumulator(2).Add([]float64{1})
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, rawQ float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		q := math.Abs(math.Mod(rawQ, 1))
		if math.IsNaN(q) {
			q = 0.5
		}
		got := Quantile(x, q)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
