// Package stats provides the error metrics and trial aggregation used by
// the paper's evaluation (Section 5): squared error between query answers
// (Definition 2.3), per-position profiles (Figure 7), and running
// mean/variance accumulators for averaging over repeated samples of the
// differentially private mechanisms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// SquaredError returns sum_i (a[i]-b[i])^2, the total squared error of
// Definition 2.3 for one sample. It panics if the lengths differ.
func SquaredError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// MeanSquaredError returns SquaredError(a, b) / len(a), the per-position
// average used on the Figure 5 axis. It panics on empty input.
func MeanSquaredError(a, b []float64) float64 {
	if len(a) == 0 {
		panic("stats: MeanSquaredError of empty vectors")
	}
	return SquaredError(a, b) / float64(len(a))
}

// AbsoluteError returns sum_i |a[i]-b[i]|.
func AbsoluteError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// Mean returns the arithmetic mean. It panics on empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		panic("stats: Mean of empty slice")
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance. It panics on empty input.
func Variance(x []float64) float64 {
	m := Mean(x)
	sum := 0.0
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(x))
}

// Quantile returns the q-quantile (0 <= q <= 1) of x by linear
// interpolation on the sorted copy. It panics on empty input or q outside
// [0, 1].
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 || q < 0 || q > 1 {
		panic("stats: bad Quantile arguments")
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Accumulator tracks a running mean and variance (Welford's algorithm)
// of a scalar across trials.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 before any observation).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running population variance.
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.Variance() / float64(a.n))
}

// VectorAccumulator tracks per-position running means across trials, for
// positional error profiles like Figure 7.
type VectorAccumulator struct {
	n     int
	means []float64
}

// NewVectorAccumulator returns an accumulator for vectors of length n.
func NewVectorAccumulator(n int) *VectorAccumulator {
	return &VectorAccumulator{means: make([]float64, n)}
}

// Add incorporates one vector observation. It panics on length mismatch.
func (va *VectorAccumulator) Add(x []float64) {
	if len(x) != len(va.means) {
		panic("stats: VectorAccumulator length mismatch")
	}
	va.n++
	inv := 1 / float64(va.n)
	for i, v := range x {
		va.means[i] += (v - va.means[i]) * inv
	}
}

// N returns the number of observations.
func (va *VectorAccumulator) N() int { return va.n }

// Means returns a copy of the per-position running means.
func (va *VectorAccumulator) Means() []float64 {
	return append([]float64(nil), va.means...)
}
