package journal

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzScan throws arbitrary bytes at the journal record parser. The
// invariants under fuzzing are the recovery contract itself:
//
//   - Scan never panics and never reports a valid prefix longer than
//     the input.
//   - Recovery is idempotent: re-scanning the valid prefix of a clean
//     scan recovers exactly the same records with no error and no
//     further truncation — a store that crashes during recovery and
//     recovers again must land in the same state.
func FuzzScan(f *testing.F) {
	seed := func(recs ...Record) []byte {
		var buf bytes.Buffer
		for _, r := range recs {
			frame, err := Marshal(r)
			if err != nil {
				f.Fatal(err)
			}
			buf.Write(frame)
		}
		return buf.Bytes()
	}
	f.Add([]byte(nil))
	f.Add(seed(Record{Seq: 1, Op: OpCharge, Namespace: "default", Label: "release:universal", Epsilon: 0.5}))
	f.Add(seed(
		Record{Seq: 1, Op: OpPut, Namespace: "tenant-a", Name: "traffic", Version: 1,
			StoredAt: time.Unix(100, 0).UTC(), Payload: json.RawMessage(`{"version":2,"strategy":"laplace"}`)},
		Record{Seq: 2, Op: OpDelete, Namespace: "tenant-a", Name: "traffic"},
		Record{Seq: 3, Op: OpCharge, Namespace: "tenant-a", Label: "x", Epsilon: 1},
	))
	two := seed(Record{Seq: 1, Op: OpCharge, Epsilon: 1}, Record{Seq: 2, Op: OpCharge, Epsilon: 1})
	f.Add(two[:len(two)-3]) // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		var first []Record
		_, valid, err := Scan(data, func(r Record) error { first = append(first, r); return nil })
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err != nil {
			return // loud corruption: nothing more to hold invariant
		}
		var second []Record
		_, valid2, err2 := Scan(data[:valid], func(r Record) error { second = append(second, r); return nil })
		if err2 != nil {
			t.Fatalf("re-scan of valid prefix failed: %v", err2)
		}
		if valid2 != valid {
			t.Fatalf("re-scan truncated further: %d -> %d", valid, valid2)
		}
		if len(second) != len(first) {
			t.Fatalf("re-scan recovered %d records, first pass %d", len(second), len(first))
		}
	})
}
