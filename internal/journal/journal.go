// Package journal is the durability layer under the release store — and,
// since the log carries every store event in commit order, also its
// replication layer: an append-only log of store events
// (put/delete/charge) plus atomically replaced snapshots. The privacy
// argument makes this more than an availability feature — minting a
// release spends epsilon permanently, so a process that forgets what it
// has spent can be tricked into spending it again. The journal's
// contract is therefore asymmetric:
//
//   - An event is acknowledged only after its record is on disk (and,
//     by default, fsynced). A crash can lose at most the record being
//     written at the instant of the crash — an event that was never
//     acknowledged to any caller.
//   - Recovery restores a consistent prefix of acknowledged events. A
//     torn final record (partial header, short payload, or a checksum
//     mismatch that runs to end-of-file) is silently truncated, because
//     it is indistinguishable from the unacknowledged tail of a crashed
//     append — which also means later bit rot confined to the very last
//     record is absorbed the same way; that single-record ambiguity is
//     inherent to any log without an out-of-band commit marker. Damage
//     anywhere else — a bad checksum with more data behind it, a full
//     header failing its own checksum, or a record whose checksum
//     passes but whose content does not parse — cannot be a torn
//     append, and recovery fails loudly with ErrCorrupt rather than
//     under-reporting spent budget.
//
// On disk a record is framed as a 12-byte little-endian header —
// 4 bytes of payload length, 4 bytes of IEEE CRC32 over those length
// bytes, 4 bytes of IEEE CRC32 over the payload — followed by the
// JSON-encoded Record. The header checksum makes the framing itself
// self-checking: because the log is append-only and never preallocated,
// a torn append can only leave a *short* file, so a full header that
// fails its own checksum cannot be a torn write and is reported as
// corruption instead of silently desynchronizing the scan (which would
// drop every record after it). The payload for a put carries the
// release in the self-describing v2 wire format, so a journal is
// readable by anything that speaks dphist.DecodeRelease.
//
// As a replication log the journal adds three capabilities on top of
// the same framing: ReadFrom serves the suffix of the log at or after a
// sequence number (ErrCompacted when that suffix was folded into a
// snapshot, telling the reader to bootstrap from the snapshot instead),
// Updated hands out a broadcast channel closed on the next append so
// tailing readers can long-poll without spinning, and AppendRecord
// writes a record that already carries its sequence number — the
// follower side of the pipe, persisting shipped records under the
// primary's numbering so a replica's recovery point is a primary
// sequence.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Op is the kind of store event a record describes.
type Op string

// The three journaled store events. Reads are never journaled: serving
// queries is free post-processing and recency order is deliberately
// volatile.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpCharge Op = "charge"
)

// Record is one store event. Which fields are meaningful depends on Op:
// puts carry Name/Version/StoredAt/Payload, deletes carry Name, charges
// carry Label/Epsilon. Namespace and Seq are set on every record.
type Record struct {
	Seq       uint64          `json:"seq"`
	Op        Op              `json:"op"`
	Namespace string          `json:"ns,omitempty"`
	Name      string          `json:"name,omitempty"`
	Version   int             `json:"version,omitempty"`
	StoredAt  time.Time       `json:"stored_at,omitempty"`
	Label     string          `json:"label,omitempty"`
	Epsilon   float64         `json:"epsilon,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
}

// ErrCorrupt reports journal or snapshot damage that cannot be a torn
// final append — recovery refuses to guess at the state.
var ErrCorrupt = errors.New("journal: corrupt record")

// ErrClosed reports an append to a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrCompacted reports a ReadFrom floor that predates the log: the
// requested records were folded into a snapshot and discarded, so a
// replica asking for them must bootstrap from the snapshot instead.
var ErrCompacted = errors.New("journal: sequence compacted into snapshot")

const (
	headerSize = 12
	// MaxRecordSize bounds one framed payload. A declared length past it
	// can never be valid, so the scanner need not allocate for it.
	MaxRecordSize = 64 << 20
)

// Marshal frames a record for appending: header (length, header CRC32,
// payload CRC32) plus JSON payload. Exposed for tests and fuzzing;
// Append uses it.
func Marshal(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecordSize {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds limit %d", len(payload), MaxRecordSize)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[0:4]))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// Scan walks the framed records in data, calling fn for each in order.
// It returns the sequence number of the last delivered record and the
// byte length of the valid prefix. A torn tail — a partial header at
// the end of data, a checksummed length that runs past it, or a payload
// checksum mismatch on the final frame — ends the scan cleanly with
// valid < len(data). Anything a torn append cannot produce — a full
// header failing its own checksum, a payload checksum mismatch with
// data behind it, an impossible declared length, an unparseable
// payload, or a non-increasing sequence number — returns ErrCorrupt.
// An error from fn aborts the scan and is returned as-is.
func Scan(data []byte, fn func(Record) error) (lastSeq uint64, valid int, err error) {
	off := 0
	for {
		if off+headerSize > len(data) {
			return lastSeq, off, nil // torn or absent header
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		hsum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		psum := binary.LittleEndian.Uint32(data[off+8 : off+12])
		if crc32.ChecksumIEEE(data[off:off+4]) != hsum {
			// The log is append-only and never preallocated, so a torn
			// append leaves a short file, never a full garbage header.
			return lastSeq, off, fmt.Errorf("%w: header checksum mismatch at offset %d", ErrCorrupt, off)
		}
		if length > MaxRecordSize {
			return lastSeq, off, fmt.Errorf("%w: declared length %d at offset %d exceeds limit", ErrCorrupt, length, off)
		}
		end := off + headerSize + length
		if end > len(data) {
			return lastSeq, off, nil // payload torn off mid-write
		}
		payload := data[off+headerSize : end]
		if crc32.ChecksumIEEE(payload) != psum {
			if end == len(data) {
				return lastSeq, off, nil // final frame, torn within its sectors
			}
			return lastSeq, off, fmt.Errorf("%w: payload checksum mismatch at offset %d with %d bytes following",
				ErrCorrupt, off, len(data)-end)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return lastSeq, off, fmt.Errorf("%w: offset %d: %v", ErrCorrupt, off, err)
		}
		if rec.Seq <= lastSeq {
			return lastSeq, off, fmt.Errorf("%w: sequence %d at offset %d does not advance past %d",
				ErrCorrupt, rec.Seq, off, lastSeq)
		}
		if err := fn(rec); err != nil {
			return lastSeq, off, err
		}
		lastSeq = rec.Seq
		off = end
	}
}

// Option configures an opened journal.
type Option func(*Journal)

// WithSync controls whether every append is fsynced before it returns.
// The default is true — required for the crash-durability contract; turn
// it off only for benchmarks and tests that tolerate losing the tail.
func WithSync(sync bool) Option {
	return func(j *Journal) { j.sync = sync }
}

// WithBaseSeq floors the sequence numbering: the first append is
// assigned at least base+1. Callers replaying on top of a snapshot pass
// the snapshot's sequence so numbering stays monotone across a write-
// ahead log that was reset after the snapshot. The base also marks the
// compaction horizon for ReadFrom: sequences at or below it live only
// in the snapshot.
func WithBaseSeq(base uint64) Option {
	return func(j *Journal) {
		j.baseSeq = base
		if j.nextSeq <= base {
			j.nextSeq = base + 1
		}
	}
}

// Journal is an open, appendable log file. Safe for concurrent use. A
// failed write leaves the file in an unknown state, so the journal
// becomes sticky-broken: every later append returns the first error.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	nextSeq uint64
	baseSeq uint64 // sequences <= baseSeq live only in the snapshot
	sync    bool
	broken  error
	watch   chan struct{} // closed on the next append; see Updated

	// readFrom/readOff memoize where the last ReadFrom stopped: when the
	// next call asks for exactly readFrom, scanning resumes at byte
	// readOff instead of the file start, so a tailing replica pays for
	// the new suffix only, not the whole log on every wake. Appends only
	// extend the file past readOff; truncation (resetLocked) clears it.
	readFrom uint64
	readOff  int64
}

// Open reads the log at path (creating it if absent), delivers every
// recovered record to fn in order, truncates a torn tail, and returns
// the journal positioned for appending. Recovery failures — ErrCorrupt
// damage or an fn error — close the file and return the error; the
// caller decides whether to repair or refuse to serve.
func Open(path string, fn func(Record) error, opts ...Option) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	lastSeq, valid, err := Scan(data, fn)
	if err != nil {
		return nil, fmt.Errorf("journal: recover %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// Make the file's directory entry durable too: an fsynced record in
	// a file whose creation was never synced can vanish with the whole
	// file on power loss, silently zeroing the ledger. Best effort, as
	// for snapshots.
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = dir.Sync()
		dir.Close()
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{f: f, nextSeq: lastSeq + 1, sync: true}
	for _, opt := range opts {
		opt(j)
	}
	return j, nil
}

// Append assigns the record the next sequence number, writes it, and —
// under the default sync policy — fsyncs before returning. The assigned
// sequence is returned; the caller must not acknowledge the event to
// anyone until Append has.
func (j *Journal) Append(rec Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.nextSeq
	if err := j.appendLocked(rec); err != nil {
		return 0, err
	}
	return rec.Seq, nil
}

// AppendRecord writes a record that already carries its sequence number
// — a replication shipment from a primary — preserving that numbering
// so the local log stays addressable by primary sequence. The sequence
// must advance past everything already in the log; numbering continues
// from it, so Append and AppendRecord can interleave only monotonically.
func (j *Journal) AppendRecord(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.Seq < j.nextSeq {
		return fmt.Errorf("journal: shipped sequence %d does not advance past %d", rec.Seq, j.nextSeq-1)
	}
	return j.appendLocked(rec)
}

// appendLocked frames and writes rec (whose Seq the caller has set),
// fsyncs under the sync policy, advances nextSeq past it, and wakes
// tailing readers. Caller holds j.mu.
func (j *Journal) appendLocked(rec Record) error {
	if j.f == nil {
		return ErrClosed
	}
	if j.broken != nil {
		return fmt.Errorf("journal: unusable after earlier write failure: %w", j.broken)
	}
	frame, err := Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		j.broken = err
		return err
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			j.broken = err
			return err
		}
	}
	j.nextSeq = rec.Seq + 1
	if j.watch != nil {
		close(j.watch)
		j.watch = nil
	}
	return nil
}

// Updated returns a channel that is closed by the next successful
// append (or by Close, so waiters never hang on a dead log). Tailing
// readers grab the channel, read the log suffix, and block on the
// channel only if the read came up empty — taking the channel before
// reading closes the race where a record lands in between.
func (j *Journal) Updated() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	if j.watch == nil {
		j.watch = make(chan struct{})
	}
	return j.watch
}

// ReadFrom returns every record in the log with sequence >= from, in
// order. A from at or below the compaction horizon fails with
// ErrCompacted — those records were folded into a snapshot and the
// reader must bootstrap from it. The read scans the on-disk log, so it
// sees exactly what a recovery would and shares Scan's corruption
// guarantees; a tailing reader that advances from one call to the next
// resumes at the memoized file offset and pays only for the new
// suffix, keeping per-wake streaming cost independent of log size.
func (j *Journal) ReadFrom(from uint64) ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil, ErrClosed
	}
	if from <= j.baseSeq {
		return nil, fmt.Errorf("%w: sequence %d is at or below horizon %d", ErrCompacted, from, j.baseSeq)
	}
	info, err := j.f.Stat()
	if err != nil {
		return nil, err
	}
	var start int64
	if j.readOff > 0 && from == j.readFrom && j.readOff <= info.Size() {
		start = j.readOff // resume the previous tail scan
	}
	data := make([]byte, info.Size()-start)
	if len(data) > 0 {
		if _, err := j.f.ReadAt(data, start); err != nil {
			return nil, err
		}
	}
	var out []Record
	_, valid, err := Scan(data, func(rec Record) error {
		if rec.Seq >= from {
			out = append(out, rec)
		}
		return nil
	})
	if err != nil {
		j.readFrom, j.readOff = 0, 0
		return nil, err
	}
	j.readOff = start + int64(valid)
	if len(out) > 0 {
		j.readFrom = out[len(out)-1].Seq + 1
	} else {
		j.readFrom = from
	}
	return out, nil
}

// NextSeq returns the sequence number the next append will be assigned.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Reset discards the log's contents after its events have been folded
// into a durable snapshot. Sequence numbering continues from where it
// was, so records appended after the reset still sort after the
// snapshot's sequence — which becomes the new compaction horizon:
// ReadFrom now refuses the discarded range with ErrCompacted.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resetLocked(j.nextSeq - 1)
}

// Rebase discards the log's contents and jumps the sequence numbering
// past base — the follower side of snapshot bootstrap: after loading a
// primary snapshot taken at base, the replica's log restarts empty with
// base as its compaction horizon, ready for shipped records at base+1.
func (j *Journal) Rebase(base uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.resetLocked(base); err != nil {
		return err
	}
	if j.nextSeq <= base {
		j.nextSeq = base + 1
	}
	return nil
}

// resetLocked truncates the file and sets the compaction horizon.
// Caller holds j.mu.
func (j *Journal) resetLocked(base uint64) error {
	if j.f == nil {
		return ErrClosed
	}
	if err := j.f.Truncate(0); err != nil {
		j.broken = err
		return err
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		j.broken = err
		return err
	}
	j.broken = nil
	j.baseSeq = base
	j.readFrom, j.readOff = 0, 0 // the memoized offset died with the bytes
	return nil
}

// Close syncs and closes the log file. Further appends return ErrClosed,
// and any reader blocked on Updated is woken to observe the closure.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if j.watch != nil {
		close(j.watch)
		j.watch = nil
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// WriteSnapshot atomically replaces path with the JSON encoding of v:
// the state is written to a temporary file, fsynced, and renamed over
// path, so a crash at any instant leaves either the old snapshot or the
// new one — never a partial file under the live name.
func WriteSnapshot(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// ReadSnapshot decodes the snapshot at path into v. The boolean reports
// whether a snapshot existed; a snapshot that exists but does not parse
// is corruption and fails loudly.
func ReadSnapshot(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("%w: snapshot %s: %v", ErrCorrupt, path, err)
	}
	return true, nil
}
