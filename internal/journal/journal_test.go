package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func collect(t *testing.T, path string) ([]Record, *Journal) {
	t.Helper()
	var recs []Record
	j, err := Open(path, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	return recs, j
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := j.Append(Record{Op: OpCharge, Namespace: "default", Label: "t", Epsilon: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	seq, err := j.Append(Record{Op: OpPut, Namespace: "ns", Name: "a", Version: 1,
		StoredAt: time.Unix(5, 0).UTC(), Payload: json.RawMessage(`{"x":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first seq = %d", seq)
	}
	appendN(t, j, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, j2 := collect(t, path)
	defer j2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records", len(recs))
	}
	r := recs[0]
	if r.Seq != 1 || r.Op != OpPut || r.Namespace != "ns" || r.Name != "a" ||
		r.Version != 1 || !r.StoredAt.Equal(time.Unix(5, 0)) || string(r.Payload) != `{"x":1}` {
		t.Fatalf("record = %+v", r)
	}
	if recs[2].Seq != 3 {
		t.Fatalf("last seq = %d", recs[2].Seq)
	}
	// Appends continue the sequence.
	if seq, err := j2.Append(Record{Op: OpDelete, Name: "a"}); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq %d, err %v", seq, err)
	}
}

// The recovery contract, table-driven over the ways a WAL file can be
// damaged: torn tails restore the valid prefix, mid-file corruption
// fails loudly.
func TestRecoveryDamageMatrix(t *testing.T) {
	makeWAL := func(t *testing.T, n int) (string, []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		_, j := collect(t, path)
		appendN(t, j, n)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}
	frameEnds := func(data []byte) []int {
		var ends []int
		off := 0
		for off+headerSize <= len(data) {
			off += headerSize + int(binary.LittleEndian.Uint32(data[off:off+4]))
			ends = append(ends, off)
		}
		return ends
	}

	cases := []struct {
		name    string
		mutate  func(t *testing.T, data []byte, ends []int) []byte
		want    int  // records recovered (when !corrupt)
		corrupt bool // Open must fail with ErrCorrupt
	}{
		{"empty file", func(t *testing.T, d []byte, e []int) []byte { return nil }, 0, false},
		{"intact", func(t *testing.T, d []byte, e []int) []byte { return d }, 3, false},
		{"torn header", func(t *testing.T, d []byte, e []int) []byte { return d[:e[1]+5] }, 2, false},
		{"torn payload", func(t *testing.T, d []byte, e []int) []byte { return d[:e[1]+headerSize+4] }, 2, false},
		{"final record truncated", func(t *testing.T, d []byte, e []int) []byte { return d[:len(d)-1] }, 2, false},
		{"short garbage appended", func(t *testing.T, d []byte, e []int) []byte {
			return append(d, 0xde, 0xad, 0xbe, 0xef) // fewer bytes than a header: reads as torn
		}, 3, false},
		{"bit flip in final record", func(t *testing.T, d []byte, e []int) []byte {
			d[len(d)-2] ^= 0x40
			return d
		}, 2, false},
		{"bit flip mid-file", func(t *testing.T, d []byte, e []int) []byte {
			d[e[0]+headerSize+2] ^= 0x40
			return d
		}, 0, true},
		{"header length corrupted mid-file", func(t *testing.T, d []byte, e []int) []byte {
			binary.LittleEndian.PutUint32(d[e[0]:e[0]+4], uint32(len(d))) // header checksum no longer matches
			return d
		}, 0, true},
		{"full garbage header appended", func(t *testing.T, d []byte, e []int) []byte {
			// An append can only leave a short file, so a whole bad header
			// must be disk damage, not a tear.
			return append(d, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef)
		}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, data := makeWAL(t, 3)
			mutated := tc.mutate(t, append([]byte(nil), data...), frameEnds(data))
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			var recs []Record
			j, err := Open(path, func(r Record) error { recs = append(recs, r); return nil })
			if tc.corrupt {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("err = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if len(recs) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.want)
			}
			// Recovery truncated the tail: appending then reopening must
			// see exactly want+1 records with a monotone sequence.
			if _, err := j.Append(Record{Op: OpCharge, Label: "after", Epsilon: 1}); err != nil {
				t.Fatal(err)
			}
			j.Close()
			recs2, j2 := collect(t, path)
			defer j2.Close()
			if len(recs2) != tc.want+1 {
				t.Fatalf("after repair-and-append: %d records, want %d", len(recs2), tc.want+1)
			}
			if recs2[len(recs2)-1].Label != "after" {
				t.Fatal("appended record lost")
			}
		})
	}
}

func TestScanRejectsNonMonotoneSeq(t *testing.T) {
	a, err := Marshal(Record{Seq: 2, Op: OpCharge})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(Record{Seq: 2, Op: OpCharge})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Scan(append(a, b...), func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestScanOversizeLengthIsCorrupt(t *testing.T) {
	// A header whose own checksum passes but declares an impossible
	// length was never written by Append — loud corruption, even at the
	// tail.
	data := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(data[0:4], MaxRecordSize+1)
	binary.LittleEndian.PutUint32(data[4:8], crc32.ChecksumIEEE(data[0:4]))
	if _, _, err := Scan(data, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// A partial header at the tail is a torn append.
	if _, valid, err := Scan(data[:headerSize-4], func(Record) error { return nil }); err != nil || valid != 0 {
		t.Fatalf("partial header: valid %d err %v", valid, err)
	}
}

func TestResetKeepsSequenceMonotone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	appendN(t, j, 5)
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if seq, err := j.Append(Record{Op: OpCharge, Label: "x", Epsilon: 1}); err != nil || seq != 6 {
		t.Fatalf("post-reset seq = %d, err %v", seq, err)
	}
	j.Close()
	recs, j2 := collect(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].Seq != 6 {
		t.Fatalf("post-reset replay = %+v", recs)
	}
}

func TestWithBaseSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j, err := Open(path, func(Record) error { return nil }, WithBaseSeq(41))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if seq, err := j.Append(Record{Op: OpCharge, Label: "x", Epsilon: 1}); err != nil || seq != 42 {
		t.Fatalf("seq = %d, err %v", seq, err)
	}
}

func TestClosedJournalRefusesAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Op: OpCharge}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	type state struct {
		Seq   uint64   `json:"seq"`
		Names []string `json:"names"`
	}
	var missing state
	if found, err := ReadSnapshot(path, &missing); found || err != nil {
		t.Fatalf("missing snapshot: found %v err %v", found, err)
	}
	want := state{Seq: 7, Names: []string{"a", "b"}}
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	var got state
	if found, err := ReadSnapshot(path, &got); !found || err != nil {
		t.Fatalf("found %v err %v", found, err)
	}
	if got.Seq != 7 || len(got.Names) != 2 {
		t.Fatalf("got %+v", got)
	}
	// Overwrite is atomic-replace: the temp file never lingers.
	if err := WriteSnapshot(path, state{Seq: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp snapshot left behind: %v", err)
	}
	// A partial snapshot fails loudly.
	if err := os.WriteFile(path, []byte(`{"seq":9,"na`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial snapshot err = %v, want ErrCorrupt", err)
	}
}
