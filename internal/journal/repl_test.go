package journal

// Tests for the replication-log surface: seq-addressed reads with a
// compaction horizon, preserved-sequence appends on the follower side,
// and the append broadcast that tailing readers long-poll on.

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestReadFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	defer j.Close()
	appendN(t, j, 5)

	recs, err := j.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Seq != 1 || recs[4].Seq != 5 {
		t.Fatalf("ReadFrom(1) = %d records, seqs %v..%v", len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
	recs, err = j.ReadFrom(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("ReadFrom(4) = %+v", recs)
	}
	// Past the end: empty, not an error — the caller long-polls.
	recs, err = j.ReadFrom(6)
	if err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(6) = %d records, err %v", len(recs), err)
	}
}

// TestReadFromTailResume exercises the memoized tail offset: a reader
// advancing call by call (the streaming handler's access pattern) must
// see exactly the appended suffix each time, interleaved with
// non-resuming reads and appends, and survive a Reset.
func TestReadFromTailResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	defer j.Close()
	appendN(t, j, 3)
	from := uint64(1)
	read := func(wantSeqs ...uint64) {
		t.Helper()
		recs, err := j.ReadFrom(from)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(wantSeqs) {
			t.Fatalf("ReadFrom(%d) = %d records, want %d", from, len(recs), len(wantSeqs))
		}
		for i, want := range wantSeqs {
			if recs[i].Seq != want {
				t.Fatalf("ReadFrom(%d)[%d].Seq = %d, want %d", from, i, recs[i].Seq, want)
			}
		}
		if len(recs) > 0 {
			from = recs[len(recs)-1].Seq + 1
		}
	}
	read(1, 2, 3)
	read() // caught up: the resumed scan sees nothing
	appendN(t, j, 2)
	read(4, 5)
	// A read at a different position must not be served from the memo,
	// and must not poison the tail reader's next resume.
	if recs, err := j.ReadFrom(2); err != nil || len(recs) != 4 || recs[0].Seq != 2 {
		t.Fatalf("non-tail ReadFrom(2) = %d records, err %v", len(recs), err)
	}
	appendN(t, j, 1)
	read(6)
	// Reset truncates the file; the memoized offset must die with it.
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 1) // seq 7
	read(7)
}

func TestReadFromCompactionHorizon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	defer j.Close()
	appendN(t, j, 3)
	if err := j.Reset(); err != nil { // snapshot folded seqs 1..3
		t.Fatal(err)
	}
	appendN(t, j, 2) // seqs 4, 5
	if _, err := j.ReadFrom(3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom below horizon: %v, want ErrCompacted", err)
	}
	recs, err := j.ReadFrom(4)
	if err != nil || len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("ReadFrom(4) after reset = %+v, err %v", recs, err)
	}
	// The horizon survives reopen via WithBaseSeq, as OpenStore passes it.
	j.Close()
	j2, err := Open(path, func(Record) error { return nil }, WithBaseSeq(3))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := j2.ReadFrom(2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("reopened ReadFrom below base: %v, want ErrCompacted", err)
	}
}

func TestAppendRecordPreservesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	if err := j.AppendRecord(Record{Seq: 10, Op: OpCharge, Label: "shipped", Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Regressions and duplicates are refused: the log must stay monotone.
	if err := j.AppendRecord(Record{Seq: 10, Op: OpCharge}); err == nil {
		t.Fatal("duplicate shipped seq accepted")
	}
	if err := j.AppendRecord(Record{Seq: 12, Op: OpDelete, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// Local numbering continues after the shipped one.
	if seq, err := j.Append(Record{Op: OpCharge, Label: "local", Epsilon: 1}); err != nil || seq != 13 {
		t.Fatalf("seq = %d, err %v", seq, err)
	}
	j.Close()
	recs, j2 := collect(t, path)
	defer j2.Close()
	if len(recs) != 3 || recs[0].Seq != 10 || recs[1].Seq != 12 || recs[2].Seq != 13 {
		t.Fatalf("replay = %+v", recs)
	}
}

func TestRebase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	defer j.Close()
	appendN(t, j, 2)
	// Bootstrap from a primary snapshot taken at seq 100.
	if err := j.Rebase(100); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ReadFrom(100); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom at rebased horizon: %v, want ErrCompacted", err)
	}
	if err := j.AppendRecord(Record{Seq: 101, Op: OpCharge, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	recs, err := j.ReadFrom(101)
	if err != nil || len(recs) != 1 || recs[0].Seq != 101 {
		t.Fatalf("post-rebase ReadFrom = %+v, err %v", recs, err)
	}
}

func TestUpdatedBroadcast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, j := collect(t, path)
	ch := j.Updated()
	select {
	case <-ch:
		t.Fatal("channel closed before any append")
	default:
	}
	appendN(t, j, 1)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not close the watch channel")
	}
	// A fresh channel per generation; Close wakes waiters too.
	ch = j.Updated()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake watchers")
	}
	// On a closed journal, Updated returns an already-closed channel.
	select {
	case <-j.Updated():
	default:
		t.Fatal("Updated on closed journal should not block")
	}
}
