// Package linalg provides the small dense linear algebra needed to verify
// the paper's closed-form estimators against brute-force least squares.
// Theorem 3's two-pass recurrence is, by the Gauss-Markov argument of
// Theorem 4, the ordinary-least-squares estimate of the leaf counts from
// the noisy tree observations; tests in internal/core solve that OLS
// problem explicitly through this package and compare.
//
// The implementation favors clarity and numerical robustness (partial
// pivoting, symmetric solves via Cholesky) over speed: matrices here are
// tiny (hundreds of rows at most, in tests only).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty and
// of equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows requires a non-empty rectangle")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m*b. It panics on a shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for l := 0; l < m.Cols; l++ {
			a := m.At(i, l)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(l, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// ErrSingular reports that a solve encountered a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveGaussian solves a*x = b by Gaussian elimination with partial
// pivoting. a must be square; a and b are not modified.
func SolveGaussian(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: solve requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), a.Rows)
	}
	n := a.Rows
	aug := a.Clone()
	rhs := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				aug.Data[col*n+j], aug.Data[pivot*n+j] = aug.Data[pivot*n+j], aug.Data[col*n+j]
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.Data[r*n+j] -= f * aug.Data[col*n+j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := rhs[i]
		for j := i + 1; j < n; j++ {
			sum -= aug.At(i, j) * x[j]
		}
		x[i] = sum / aug.At(i, i)
	}
	return x, nil
}

// Cholesky computes the lower-triangular factor L with a = L*L^T for a
// symmetric positive-definite matrix a.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for s := 0; s < j; s++ {
				sum -= l.At(i, s) * l.At(j, s)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a*x = b for symmetric positive-definite a.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	// Forward substitution: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for j := 0; j < i; j++ {
			sum -= l.At(i, j) * y[j]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution: L^T*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for j := i + 1; j < n; j++ {
			sum -= l.At(j, i) * x[j]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// LeastSquares returns argmin_x ||A*x - b||_2 via the normal equations
// A^T A x = A^T b, solved by Cholesky (A must have full column rank).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: rhs length %d != rows %d", len(b), a.Rows)
	}
	at := a.T()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	x, err := SolveCholesky(ata, atb)
	if err != nil {
		// Fall back to pivoted Gaussian elimination for borderline
		// conditioning.
		return SolveGaussian(ata, atb)
	}
	return x, nil
}
