package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAtSetClone(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases original")
	}
}

func TestFromRowsPanics(t *testing.T) {
	for _, rows := range [][][]float64{{}, {{}}, {{1, 2}, {3}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromRows(%v) did not panic", rows)
				}
			}()
			FromRows(rows)
		}()
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatal("transpose shape wrong")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatal("transpose values wrong")
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", got.Data, want.Data)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestSolveGaussianKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveGaussian(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveGaussianSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGaussian(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestSolveGaussianDoesNotModifyInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	ac := a.Clone()
	bc := append([]float64(nil), b...)
	if _, err := SolveGaussian(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != ac.Data[i] {
			t.Fatal("matrix modified")
		}
	}
	for i := range b {
		if b[i] != bc[i] {
			t.Fatal("rhs modified")
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	a := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.Mul(l.T())
	for i := range a.Data {
		if math.Abs(recon.Data[i]-a.Data[i]) > 1e-9 {
			t.Fatalf("LL^T = %v, want %v", recon.Data, a.Data)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix factored")
	}
}

func TestSolveCholeskyMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(8)
		// Random SPD matrix: B^T B + n*I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.T().Mul(b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x1, err1 := SolveCholesky(a, rhs)
		x2, err2 := SolveGaussian(a, rhs)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				t.Fatalf("solvers disagree: %v vs %v", x1, x2)
			}
		}
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// Square invertible system: least squares must reproduce the solve.
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	x, err := LeastSquares(a, []float64{9, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = c0 + c1*t to points on the line y = 1 + 2t plus symmetric
	// perturbation; the residual must be orthogonal to the column space.
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1.1, 2.9, 5.1, 6.9}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fitted := a.MulVec(x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = b[i] - fitted[i]
	}
	at := a.T()
	ortho := at.MulVec(resid)
	for _, v := range ortho {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("normal equations violated: A^T r = %v", ortho)
		}
	}
}

func TestQuickSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 19))
	f := func(seed uint32) bool {
		n := 1 + int(seed)%6
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+5) // diagonally dominant-ish
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveGaussian(a, b)
		if err != nil {
			return true // singular draw; skip
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLeastSquares64(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	a := NewMatrix(127, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	rhs := make([]float64, 127)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
