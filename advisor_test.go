package dphist

import (
	"encoding/json"
	"errors"
	"sort"
	"testing"
)

// TestRecommendationShapeIsFlat pins the advisor's public shape: the
// winner's fields are scalars and Alternatives is a flat ranked list of
// leaf predictions — an alternative never nests its own alternatives,
// so serializing a Recommendation cannot recurse.
func TestRecommendationShapeIsFlat(t *testing.T) {
	w, err := NewWorkload(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := w.Add(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Add(0, 32, 3); err != nil {
		t.Fatal(err)
	}
	rec, err := w.Recommend(1.0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Alternatives) < 6 {
		t.Fatalf("only %d alternatives for two branchings", len(rec.Alternatives))
	}
	if rec.Alternatives[0].Strategy != rec.Strategy ||
		rec.Alternatives[0].PredictedError != rec.PredictedError {
		t.Fatalf("winner %q (%v) is not first alternative %+v",
			rec.Strategy, rec.PredictedError, rec.Alternatives[0])
	}
	if !sort.SliceIsSorted(rec.Alternatives, func(i, j int) bool {
		return rec.Alternatives[i].PredictedError < rec.Alternatives[j].PredictedError
	}) {
		t.Fatalf("alternatives not ranked ascending: %+v", rec.Alternatives)
	}
	// Shape check through the wire form: each alternative is a leaf
	// object with no nested alternatives array.
	data, err := json.Marshal(rec.Alternatives)
	if err != nil {
		t.Fatal(err)
	}
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for i, alt := range raw {
		if _, nested := alt["alternatives"]; nested {
			t.Fatalf("alternative %d nests alternatives: %s", i, data)
		}
		if _, ok := alt["strategy"]; !ok {
			t.Fatalf("alternative %d missing strategy: %s", i, data)
		}
	}
	for _, alt := range rec.Alternatives {
		if alt.Confidence != "exact" && alt.Confidence != "bound" {
			t.Fatalf("alternative confidence %q", alt.Confidence)
		}
	}
}

// TestPredictHierarchicalDomainTooLarge pins the typed error a serving
// layer maps to 422: an exact inferred prediction over a domain past the
// closed-form cap fails with ErrDomainTooLarge, while the no-inference
// bound at the same size succeeds.
func TestPredictHierarchicalDomainTooLarge(t *testing.T) {
	w, err := NewWorkload(5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0, 5000, 1); err != nil {
		t.Fatal(err)
	}
	_, err = w.PredictHierarchical(2, 1.0, true)
	if !errors.Is(err, ErrDomainTooLarge) {
		t.Fatalf("err = %v, want ErrDomainTooLarge", err)
	}
	if _, err := w.PredictHierarchical(2, 1.0, false); err != nil {
		t.Fatalf("H~ bound failed on large domain: %v", err)
	}
	// Recommend still works past the cap: the universal prediction
	// degrades to its bound instead of failing.
	rec, err := w.Recommend(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range rec.Alternatives {
		if alt.Strategy == "universal" && alt.Confidence != "bound" {
			t.Fatalf("universal past the cap reported %q", alt.Confidence)
		}
	}
}
