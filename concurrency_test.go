package dphist

import (
	"sync"
	"testing"
)

// A Mechanism is documented as safe for concurrent use: parallel releases
// must neither race (run with -race) nor reuse noise streams.
func TestMechanismConcurrentReleases(t *testing.T) {
	m := MustNew(WithSeed(1))
	counts := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	const workers = 16
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rel, err := m.LaplaceHistogram(counts, 1.0)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = rel.Noisy
		}(w)
	}
	wg.Wait()
	// No two releases share a noise stream: all noisy vectors distinct.
	for i := 0; i < workers; i++ {
		for j := i + 1; j < workers; j++ {
			if results[i] == nil || results[j] == nil {
				t.Fatal("missing result")
			}
			same := true
			for p := range results[i] {
				if results[i][p] != results[j][p] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("workers %d and %d produced identical noise", i, j)
			}
		}
	}
}

// Concurrent mixed-task usage exercises every release path under -race.
func TestMechanismConcurrentMixedTasks(t *testing.T) {
	m := MustNew(WithSeed(2))
	counts := make([]float64, 64)
	for i := range counts {
		counts[i] = float64(i % 5)
	}
	cells := [][]float64{{1, 2}, {3, 4}}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.UniversalHistogram(counts, 0.5); err != nil {
				t.Error(err)
			}
			if _, err := m.UnattributedHistogram(counts, 0.5); err != nil {
				t.Error(err)
			}
			if _, err := m.WaveletHistogram(counts, 0.5); err != nil {
				t.Error(err)
			}
			if _, err := m.Universal2DHistogram(cells, 0.5); err != nil {
				t.Error(err)
			}
			if _, err := m.DegreeSequence(counts, 0.5); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
