package dphist

// Public epsilon-budget accounting: the sequential-composition bookkeeping
// the paper relies on when an analyst issues several query sequences
// (Section 2.1). Answering sequence i with an eps_i-differentially
// private mechanism yields (sum_i eps_i)-differential privacy overall, so
// a fixed total budget caps the lifetime privacy loss of a deployment.

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExceeded reports an attempt to spend more privacy budget than
// remains.
var ErrBudgetExceeded = errors.New("dphist: privacy budget exceeded")

// Accountant tracks consumption of a fixed epsilon budget under
// sequential composition: if every release is charged through one
// accountant, the overall protocol is Total()-differentially private.
// It is safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	total float64
	spent float64
	log   []Charge
}

// Charge is one recorded expenditure.
type Charge struct {
	Label   string
	Epsilon float64
}

// NewAccountant returns an accountant with the given total epsilon
// budget. It panics unless the budget is positive and finite.
func NewAccountant(total float64) *Accountant {
	if !(total > 0) || math.IsInf(total, 0) {
		panic(fmt.Sprintf("dphist: total budget must be positive and finite, got %v", total))
	}
	return &Accountant{total: total}
}

// Spend records an eps expenditure under the given label, failing with
// ErrBudgetExceeded (and recording nothing) if it would overdraw the
// budget. eps must be positive and finite.
func (a *Accountant) Spend(label string, eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("dphist: spend of %v is not a positive finite epsilon", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Tiny tolerance so that exact splits like 3 x (total/3) cannot fail
	// on the last installment through float rounding.
	if a.spent+eps > a.total*(1+1e-12) {
		return fmt.Errorf("%w: spent %v of %v, cannot add %v", ErrBudgetExceeded, a.spent, a.total, eps)
	}
	// The raw accumulator may sit a hair above total after a charge
	// admitted inside the tolerance window; it must stay un-clamped so
	// the admission check sees the true sum and the window self-exhausts
	// instead of admitting tiny charges forever. Spent/Remaining clamp
	// at read time.
	a.spent += eps
	a.log = append(a.log, Charge{Label: label, Epsilon: eps})
	return nil
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.total - a.spent; r > 0 {
		return r
	}
	return 0
}

// Spent returns the total consumed so far, clamped to Total: a final
// charge admitted inside the rounding-tolerance window can push the
// float sum a hair past the budget, and that hair must not leak into
// the public accounting. Spent() <= Total() always holds, and an
// exhausted accountant reports exactly Spent() == Total() with
// Remaining() == 0.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent > a.total {
		return a.total
	}
	return a.spent
}

// Total returns the full budget.
func (a *Accountant) Total() float64 { return a.total }

// Log returns a copy of the expenditure history in order.
func (a *Accountant) Log() []Charge {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Charge(nil), a.log...)
}

// Split divides eps into n equal shares for answering n query sequences
// under sequential composition. It panics unless n >= 1.
func Split(eps float64, n int) []float64 {
	if n < 1 {
		panic("dphist: Split requires n >= 1")
	}
	out := make([]float64, n)
	share := eps / float64(n)
	for i := range out {
		out[i] = share
	}
	return out
}
