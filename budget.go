package dphist

// Public epsilon-budget accounting: the sequential-composition bookkeeping
// the paper relies on when an analyst issues several query sequences
// (Section 2.1). Answering sequence i with an eps_i-differentially
// private mechanism yields (sum_i eps_i)-differential privacy overall, so
// a fixed total budget caps the lifetime privacy loss of a deployment.
//
// Accountants handed out by a durable Store carry a charge ledger: every
// admitted charge is journaled (and fsynced) before Spend returns, so a
// crashed-and-restarted deployment remembers exactly what it already
// spent. Without that, a restart would be a budget-reset oracle — the
// privacy guarantee of the whole deployment hinges on Spent() being
// monotone across process lifetimes, not just within one.

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExceeded reports an attempt to spend more privacy budget than
// remains.
var ErrBudgetExceeded = errors.New("dphist: privacy budget exceeded")

// chargeLedger persists admitted charges. begin/end bracket the
// admission critical section (a durable store uses them to hold off
// snapshots), and record must place the charge on stable storage before
// returning nil — a record error vetoes the charge.
type chargeLedger interface {
	begin()
	end()
	record(c Charge) error
}

// Accountant tracks consumption of a fixed epsilon budget under
// sequential composition: if every release is charged through one
// accountant, the overall protocol is Total()-differentially private.
// It is safe for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	total  float64
	spent  float64
	log    []Charge
	ledger chargeLedger // nil for purely in-memory accountants
}

// Charge is one recorded expenditure.
type Charge struct {
	Label   string
	Epsilon float64
}

// checkBudget panics unless total is a valid epsilon budget; shared by
// NewAccountant and Store's WithBudget option.
func checkBudget(total float64) {
	if !(total > 0) || math.IsInf(total, 0) {
		panic(fmt.Sprintf("dphist: total budget must be positive and finite, got %v", total))
	}
}

// NewAccountant returns an accountant with the given total epsilon
// budget. It panics unless the budget is positive and finite.
func NewAccountant(total float64) *Accountant {
	checkBudget(total)
	return &Accountant{total: total}
}

// Spend records an eps expenditure under the given label, failing with
// ErrBudgetExceeded (and recording nothing) if it would overdraw the
// budget. eps must be positive and finite. On a ledgered accountant the
// charge is on disk before Spend returns; a ledger failure refuses the
// charge, because an expenditure that could be forgotten by a restart
// must never be admitted.
func (a *Accountant) Spend(label string, eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("dphist: spend of %v is not a positive finite epsilon", eps)
	}
	if a.ledger != nil {
		a.ledger.begin()
		defer a.ledger.end()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Tiny tolerance so that exact splits like 3 x (total/3) cannot fail
	// on the last installment through float rounding.
	if a.spent+eps > a.total*(1+1e-12) {
		return fmt.Errorf("%w: spent %v of %v, cannot add %v", ErrBudgetExceeded, a.spent, a.total, eps)
	}
	c := Charge{Label: label, Epsilon: eps}
	if a.ledger != nil {
		if err := a.ledger.record(c); err != nil {
			return fmt.Errorf("dphist: charge not journaled, refusing to spend: %w", err)
		}
	}
	// The raw accumulator may sit a hair above total after a charge
	// admitted inside the tolerance window; it must stay un-clamped so
	// the admission check sees the true sum and the window self-exhausts
	// instead of admitting tiny charges forever. Spent/Remaining clamp
	// at read time.
	a.spent += eps
	a.log = append(a.log, c)
	return nil
}

// restore re-applies a charge recovered from the journal or a snapshot.
// It bypasses both admission and the ledger: the charge was already
// admitted (and paid) by a previous process, so refusing it now would
// under-report real expenditure.
func (a *Accountant) restore(c Charge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent += c.Epsilon
	a.log = append(a.log, c)
}

// resetCharges clears the accountant's recorded history in place, for a
// replica bootstrap that replaces the whole store state: the snapshot
// about to be restored carries the authoritative expenditure. The
// accountant object itself survives (rather than being replaced) so
// callers that cached the pointer — server sessions, dashboards — keep
// observing the live ledger.
func (a *Accountant) resetCharges() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent = 0
	a.log = nil
}

// rawSpent returns the unclamped accumulator and the number of recorded
// charges, for the durable store's snapshots: persisting the raw value
// keeps the admission tolerance window exhausted across restarts.
func (a *Accountant) rawSpent() (float64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent, len(a.log)
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.total - a.spent; r > 0 {
		return r
	}
	return 0
}

// spentClampTolerance bounds how far past Total the raw accumulator can
// drift through admission-window rounding before Spent stops clamping.
const spentClampTolerance = 1e-9

// Spent returns the total consumed so far. A final charge admitted
// inside the rounding-tolerance window can push the float sum a hair
// past the budget, and that hair must not leak into the public
// accounting — within the tolerance, Spent() clamps to Total() so an
// exhausted accountant reports exactly Spent() == Total() with
// Remaining() == 0. Genuine overspend beyond the tolerance — possible
// only when restored history exceeds a lowered budget — is reported
// raw, because under-reporting real expenditure is the one failure a
// privacy ledger must never have.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent > a.total && a.spent <= a.total*(1+spentClampTolerance) {
		return a.total
	}
	return a.spent
}

// Total returns the full budget.
func (a *Accountant) Total() float64 { return a.total }

// Log returns a copy of the expenditure history in order.
func (a *Accountant) Log() []Charge {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Charge(nil), a.log...)
}

// Split divides eps into n equal shares for answering n query sequences
// under sequential composition. It panics unless n >= 1.
func Split(eps float64, n int) []float64 {
	if n < 1 {
		panic("dphist: Split requires n >= 1")
	}
	out := make([]float64, n)
	share := eps / float64(n)
	for i := range out {
		out[i] = share
	}
	return out
}
